"""Iteration-level LLM executor.

Plays the role of SGLang's model runner: given the current batch it
produces the duration of the next prefill or decode iteration from the
roofline latency model, plus running totals used by the throughput
metrics and the scheduler's Γ (capacity) estimate.

The executor is *planning-only*: the serving loop owns simulated time
and schedules the completion events; the executor never mutates
requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.gpu.latency import LatencyModel


@dataclass(frozen=True)
class IterationResult:
    """Timing plan for one executor iteration."""

    kind: str                # "prefill" or "decode"
    duration: float          # seconds
    req_ids: tuple           # participating request ids
    tokens: int              # tokens processed (prompt or generated)


@dataclass
class ExecutorStats:
    """Aggregate executor counters for a run."""

    prefill_iterations: int = 0
    decode_iterations: int = 0
    prefill_tokens: int = 0
    decode_tokens: int = 0
    busy_time: float = 0.0
    # Sliding window of recent decode steps for capacity estimation.
    recent_decode: list = field(default_factory=list)


class LLMExecutor:
    """Batched iteration planner over a latency model."""

    # Window length for the Γ (throughput capacity) estimate.
    CAPACITY_WINDOW = 32

    def __init__(self, latency: LatencyModel, max_prefill_tokens: int = 8192) -> None:
        if max_prefill_tokens <= 0:
            raise ValueError("max_prefill_tokens must be positive")
        self.latency = latency
        self.max_prefill_tokens = max_prefill_tokens
        self.stats = ExecutorStats()

    # --- planning ----------------------------------------------------------
    def plan_prefill(self, entries: Sequence) -> IterationResult:
        """Plan a prefill iteration.

        Args:
            entries: sequence of ``(req_id, n_tokens)`` pairs, where
                ``n_tokens`` is what each request prefills this
                iteration (full prompt or a chunk).
        """
        if not entries:
            raise ValueError("prefill batch must be non-empty")
        req_ids = tuple(req_id for req_id, _ in entries)
        token_counts = [n for _, n in entries]
        duration = self.latency.prefill_time(token_counts)
        return IterationResult(
            kind="prefill", duration=duration, req_ids=req_ids, tokens=sum(token_counts)
        )

    def plan_decode(self, contexts: Sequence) -> IterationResult:
        """Plan one decode step.

        Args:
            contexts: sequence of ``(req_id, context_len)`` pairs for
                the running batch; each generates one token.
        """
        if not contexts:
            raise ValueError("decode batch must be non-empty")
        req_ids = tuple([req_id for req_id, _ in contexts])
        duration = self.latency.decode_step_time([length for _, length in contexts])
        return IterationResult(
            kind="decode", duration=duration, req_ids=req_ids, tokens=len(contexts)
        )

    # --- accounting ----------------------------------------------------------
    def commit(self, result: IterationResult) -> None:
        """Record a completed iteration in the running totals."""
        self.stats.busy_time += result.duration
        if result.kind == "prefill":
            self.stats.prefill_iterations += 1
            self.stats.prefill_tokens += result.tokens
        else:
            self.stats.decode_iterations += 1
            self.stats.decode_tokens += result.tokens
            window = self.stats.recent_decode
            window.append((result.tokens, result.duration))
            if len(window) > self.CAPACITY_WINDOW:
                window.pop(0)

    def commit_fused(self, result: IterationResult, step_durations: Sequence) -> None:
        """Record ``len(step_durations)`` decode iterations in one call.

        Equivalent to committing one :class:`IterationResult` per fused
        iteration (same batch, per-iteration durations): busy time
        accumulates with the identical per-iteration float additions,
        and the capacity window ends with the exact entries the
        sequential appends would have left behind.
        """
        stats = self.stats
        k = len(step_durations)
        tokens = result.tokens
        for duration in step_durations:
            stats.busy_time += duration
        stats.decode_iterations += k
        stats.decode_tokens += tokens * k
        window = stats.recent_decode
        window.extend([(tokens, duration) for duration in step_durations])
        if len(window) > self.CAPACITY_WINDOW:
            del window[: len(window) - self.CAPACITY_WINDOW]

    def capacity_estimate(self) -> float:
        """Γ: recent decode throughput in tokens/s (paper §4.3).

        Falls back to the model's single-stream rate before any decode
        history exists.
        """
        window = self.stats.recent_decode
        if window:
            tokens = sum(t for t, _ in window)
            seconds = sum(d for _, d in window)
            if seconds > 0:
                return tokens / seconds
        step = self.latency.decode_step_time([512])
        return 1.0 / step if step > 0 else float("inf")

    def chunk_prompt(self, prompt_len: int, chunk_size: int) -> list:
        """Split a prompt into chunked-prefill pieces."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        chunks = []
        remaining = prompt_len
        while remaining > 0:
            piece = min(chunk_size, remaining)
            chunks.append(piece)
            remaining -= piece
        return chunks
