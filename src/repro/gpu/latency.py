"""Roofline latency model for prefill and decode iterations.

Prefill is compute-bound: time ≈ FLOPs / effective FLOP/s, with a
quadratic attention term that matters for long prompts.  Decode is
memory-bandwidth-bound at serving batch sizes: every step streams the
full weight matrix plus each request's KV cache from device memory;
compute only takes over at very large batches.  This reproduces the
batch-size/throughput trade-off the paper's scheduler exploits
(§3.3 "Batch Size vs Decode Speed").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.gpu.hardware import HardwareSpec
from repro.gpu.models import ModelSpec


@dataclass(frozen=True)
class LatencyModel:
    """Analytical iteration-latency model for one (hardware, model) pair."""

    hardware: HardwareSpec
    model: ModelSpec

    def prefill_time(self, prompt_tokens: Sequence[int]) -> float:
        """Duration of a prefill iteration over a batch of prompts.

        Args:
            prompt_tokens: number of tokens each request contributes to
                this prefill iteration (full prompt, or a chunk of it).
        """
        total_tokens = sum(prompt_tokens)
        if total_tokens < 0:
            raise ValueError("prompt token counts must be non-negative")
        if total_tokens == 0:
            return 0.0
        linear_flops = self.model.flops_per_token * total_tokens
        # Self-attention score/context matmuls: ~4 * layers * hidden *
        # n^2 FLOPs per request (quadratic in its own prompt length).
        attn_flops = sum(
            4.0 * self.model.n_layers * self.model.hidden_size * float(n) * float(n)
            for n in prompt_tokens
        )
        compute_time = (linear_flops + attn_flops) / self.hardware.effective_flops
        return compute_time + self.hardware.iteration_overhead_s

    def decode_step_time(self, context_lengths: Iterable[int]) -> float:
        """Duration of one decode iteration (one token per request).

        Args:
            context_lengths: current context length of each request in
                the running batch.
        """
        lengths = list(context_lengths)
        if not lengths:
            return 0.0
        total = 0
        for length in lengths:
            if length < 0:
                raise ValueError("context lengths must be non-negative")
            total += length
        return self.decode_step_time_from_total(total, len(lengths))

    def decode_step_time_from_total(self, total_context: int, batch: int) -> float:
        """:meth:`decode_step_time` from the summed context length.

        The single copy of the decode roofline float sequence: both the
        per-iteration executor path and the fused macro-step walk (which
        advances ``total_context`` by ``batch`` per iteration in closed
        form) route through here, so their completion instants can never
        drift apart.
        """
        kv_bytes = self.model.kv_bytes_per_token * float(total_context)
        mem_time = (self.model.weight_bytes + kv_bytes) / self.hardware.effective_mem_bandwidth
        compute_time = self.model.flops_per_token * batch / self.hardware.effective_flops
        return max(mem_time, compute_time) + self.hardware.iteration_overhead_s

    def decode_throughput(self, batch: int, avg_context: int) -> float:
        """Steady-state tokens/s for a homogeneous batch (for sizing)."""
        if batch <= 0:
            return 0.0
        step = self.decode_step_time([avg_context] * batch)
        return batch / step if step > 0 else float("inf")

    def recompute_time(self, context_length: int) -> float:
        """Time to re-prefill a preempted request's full context."""
        return self.prefill_time([context_length])

    def transfer_time(self, n_tokens: int) -> float:
        """PCIe time to move ``n_tokens`` of KV cache one way."""
        if n_tokens < 0:
            raise ValueError("n_tokens must be non-negative")
        nbytes = self.model.kv_bytes_per_token * float(n_tokens)
        return nbytes / self.hardware.pcie_bytes_per_s
