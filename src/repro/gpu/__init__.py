"""GPU + model execution substrate.

Substitutes for the paper's CUDA/SGLang backend with an analytical
roofline model: prefill iterations are compute-bound, decode iterations
are memory-bandwidth-bound, and both depend on batch composition.  The
scheduler experiments only need *relative* timing (iteration latency vs
PCIe transfer latency vs user consumption rate), which this model
preserves; see DESIGN.md §2 for the substitution argument.
"""

from repro.gpu.hardware import HardwareSpec, get_hardware, HARDWARE_SPECS
from repro.gpu.models import ModelSpec, get_model, MODEL_SPECS
from repro.gpu.latency import LatencyModel
from repro.gpu.executor import LLMExecutor, IterationResult

__all__ = [
    "HardwareSpec",
    "get_hardware",
    "HARDWARE_SPECS",
    "ModelSpec",
    "get_model",
    "MODEL_SPECS",
    "LatencyModel",
    "LLMExecutor",
    "IterationResult",
]
