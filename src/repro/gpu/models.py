"""Model specifications for the LLMs evaluated in the paper.

Parameter counts and attention geometry come from the public model
cards.  The quantity the serving system actually depends on is
``kv_bytes_per_token`` — it sets KV-cache memory pressure and PCIe
transfer volume — plus ``weight_bytes`` and FLOPs-per-token for the
latency model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelSpec:
    """A decoder-only transformer used for serving.

    Attributes:
        name: canonical identifier.
        n_params: total parameter count.
        n_layers: transformer layer count.
        hidden_size: model dimension.
        n_heads: attention query heads.
        n_kv_heads: key/value heads (GQA).
        head_dim: per-head dimension.
        dtype_bytes: bytes per element (2 = fp16/bf16).
    """

    name: str
    n_params: float
    n_layers: int
    hidden_size: int
    n_heads: int
    n_kv_heads: int
    head_dim: int
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.n_params <= 0:
            raise ValueError("n_params must be positive")
        for field_name in ("n_layers", "hidden_size", "n_heads", "n_kv_heads", "head_dim"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.n_kv_heads > self.n_heads:
            raise ValueError("n_kv_heads cannot exceed n_heads")

    @property
    def weight_bytes(self) -> float:
        """Bytes of model weights resident in device memory."""
        return self.n_params * self.dtype_bytes

    @property
    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes per context token (K and V across all layers)."""
        return 2 * self.n_layers * self.n_kv_heads * self.head_dim * self.dtype_bytes

    @property
    def flops_per_token(self) -> float:
        """Approximate FLOPs to process one token (2 * params)."""
        return 2.0 * self.n_params


MODEL_SPECS: dict[str, ModelSpec] = {
    "llama3-8b": ModelSpec(
        name="llama3-8b",
        n_params=8.0e9,
        n_layers=32,
        hidden_size=4096,
        n_heads=32,
        n_kv_heads=8,
        head_dim=128,
    ),
    "qwen2-7b": ModelSpec(
        name="qwen2-7b",
        n_params=7.6e9,
        n_layers=28,
        hidden_size=3584,
        n_heads=28,
        n_kv_heads=4,
        head_dim=128,
    ),
    "qwen2.5-7b": ModelSpec(
        name="qwen2.5-7b",
        n_params=7.6e9,
        n_layers=28,
        hidden_size=3584,
        n_heads=28,
        n_kv_heads=4,
        head_dim=128,
    ),
    "qwen2.5-32b": ModelSpec(
        name="qwen2.5-32b",
        n_params=32.5e9,
        n_layers=64,
        hidden_size=5120,
        n_heads=40,
        n_kv_heads=8,
        head_dim=128,
    ),
}


def get_model(name: str) -> ModelSpec:
    """Look up a model spec by (case-insensitive) name."""
    key = name.lower().replace("_", "-").replace(" ", "")
    if key not in MODEL_SPECS:
        known = ", ".join(sorted(MODEL_SPECS))
        raise KeyError(f"unknown model {name!r}; known: {known}")
    return MODEL_SPECS[key]
