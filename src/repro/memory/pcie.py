"""PCIe link model: per-direction bandwidth queues.

PCIe is full duplex, so host-to-device (loads) and device-to-host
(evictions / write-through) are modelled as two independent FIFO
directions.  Each direction tracks a ``busy_until`` horizon; submitting
a transfer appends it after any in-flight work, and the chunked writer
can instead *steal idle time* inside a bounded window — the mechanism
behind the paper's synchronous chunked writing (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransferJob:
    """One completed-in-the-future transfer reservation."""

    nbytes: float
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class PCIeDirection:
    """One direction of the host link (a bandwidth-limited FIFO)."""

    def __init__(self, bandwidth_bytes_per_s: float, name: str = "") -> None:
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth_bytes_per_s
        self.name = name
        self._busy_until = 0.0
        self._bytes_moved = 0.0
        self._busy_time = 0.0

    # --- queries -----------------------------------------------------------
    def busy_until(self) -> float:
        return self._busy_until

    def queueing_delay(self, now: float) -> float:
        """Seconds a transfer submitted at ``now`` waits before starting."""
        return max(0.0, self._busy_until - now)

    def transfer_seconds(self, nbytes: float) -> float:
        return nbytes / self.bandwidth

    @property
    def bytes_moved(self) -> float:
        return self._bytes_moved

    @property
    def busy_time(self) -> float:
        return self._busy_time

    # --- mutation ------------------------------------------------------------
    def submit(self, nbytes: float, now: float, earliest_start: float = 0.0) -> TransferJob:
        """Queue a transfer of ``nbytes``; returns its reservation.

        The transfer starts when the direction is free and not before
        ``earliest_start`` (used to serialise against the other
        direction when load-evict overlap is disabled).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        start = max(now, self._busy_until, earliest_start)
        duration = self.transfer_seconds(nbytes)
        end = start + duration
        self._busy_until = end
        self._bytes_moved += nbytes
        self._busy_time += duration
        return TransferJob(nbytes=nbytes, start=start, end=end)

    def idle_bytes_within(self, now: float, horizon: float) -> float:
        """Bytes transferable in ``[now, horizon]`` after queued work."""
        window_start = max(now, self._busy_until)
        if horizon <= window_start:
            return 0.0
        return (horizon - window_start) * self.bandwidth

    def occupy(self, nbytes: float, now: float) -> None:
        """Account a chunked-writer transfer without a reservation.

        Same state mutations as :meth:`submit` (start at
        ``max(now, busy_until)``, extend the busy horizon, count bytes
        and busy time) but skips building a :class:`TransferJob` — the
        chunked writer issues one of these per dirty record per
        iteration and never needs the reservation back.
        """
        start = now if now >= self._busy_until else self._busy_until
        duration = nbytes / self.bandwidth
        self._busy_until = start + duration
        self._bytes_moved += nbytes
        self._busy_time += duration

    def occupy_bulk(self, n: int, nbytes_each: float, now: float) -> None:
        """Account ``n`` equal chunked-writer transfers at ``now`` at once.

        One call in place of ``n`` :meth:`occupy` calls with the same
        size (the fused decode path's per-iteration uniform write
        drain).  ``busy_until`` is *live* simulation state — future
        budget and queueing queries read it — so it replays the exact
        per-transfer float additions; the byte/busy-time totals only
        feed reporting and are summed in closed form (within float
        summation-order error of the sequential path).
        """
        if n <= 0 or nbytes_each <= 0:
            return
        duration = nbytes_each / self.bandwidth
        busy = now if now >= self._busy_until else self._busy_until
        for _ in range(n):
            busy = busy + duration
        self._busy_until = busy
        self._bytes_moved += nbytes_each * n
        self._busy_time += duration * n


class PCIeLink:
    """The full-duplex host link: h2d (loads) + d2h (evictions)."""

    def __init__(self, bandwidth_bytes_per_s: float) -> None:
        self.h2d = PCIeDirection(bandwidth_bytes_per_s, name="h2d")
        self.d2h = PCIeDirection(bandwidth_bytes_per_s, name="d2h")

    def utilisation(self, elapsed: float) -> dict:
        """Fractional busy time per direction over ``elapsed`` seconds."""
        if elapsed <= 0:
            return {"h2d": 0.0, "d2h": 0.0}
        return {
            "h2d": min(1.0, self.h2d.busy_time / elapsed),
            "d2h": min(1.0, self.d2h.busy_time / elapsed),
        }
