"""Prefix-sharing block table: KV blocks with identity and refcounts.

The naive allocator in :mod:`repro.memory.blocks` models KV memory as
per-owner block *counts*; this module gives blocks *identity* so
requests that provably share a token prefix can map it onto the same
physical blocks instead of allocating fresh ones — the
cacheflow/vLLM ``BlockSpaceManager`` idea (SNIPPETS.md Snippets 2–3)
restated for the simulator.

Identity model
--------------
The simulator has no token *content*, so content hashes are modelled
positionally: a request's :meth:`~repro.workload.request.Request.sharing_identity`
names a **namespace** — ``("sess", session_id)`` for conversation
turns (each turn re-feeds the previous context verbatim, so positions
align by construction) or ``("grp", prefix_group)`` for requests that
share a common prompt prefix of ``prefix_len`` tokens — and a block's
content hash is ``(namespace, block_index)``.  Two requests share a
block exactly when a real prefix cache would find equal hashes for
that span.

Block lifecycle (see docs/memory-model.md for the full diagram)::

    allocate ──▶ private ──publish──▶ shared (refs ≥ 1)
                    │                   │ last ref dropped
                    │ finish            ▼
                    └──donate──▶ cached (refs = 0) ──▶ evicted / promoted

* **attach** (prefill allocation): a new request walks the index from
  block 0 and takes a reference on every matching full block; a
  matching *partial* boundary block is **promoted** (taken over,
  ``refs == 0``) or **copy-on-write forked** (copied, ``refs >= 1``).
* **publish** (prefill complete): the request's own full-block prefix
  (and partial tail, for unbounded identities) moves under the shared
  owner so concurrent requests can reference it.
* **detach** (preempt) / **finish** (release): references drop; blocks
  whose last owner retires become *cached* (refs 0, still resident,
  LRU-ordered) and are reclaimed on demand.

Invariants (asserted by :meth:`PrefixBlockTable.check_invariants`):

* no reference count is ever negative;
* the pool's shared-owner block count equals the index size (every
  shared or cached block is physically resident, exactly once);
* ``cached`` is exactly the set of index entries with ``refs == 0``;
* each request's reference chain is a contiguous block prefix, and its
  length equals the ``KVRecord.shared_blocks`` the hierarchical
  manager folds into its held-block arithmetic;
* pool-level ``used + free == capacity`` is untouched — the table only
  re-labels ownership (:meth:`BlockPool.transfer`), so naive-mode
  accounting is bit-identical when the table is absent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.memory.blocks import BlockPool

#: Pool owner id for blocks held by the shared index (referenced or
#: cached).  Request ids are non-negative, so -1 can never collide.
SHARED_OWNER = -1

#: Stats the table maintains inside the KV manager's ``stats`` dict
#: (surfaced through ``RunReport.kv_stats``).
PREFIX_STAT_KEYS = (
    "prefix_lookups",       # attach() calls for requests with identity
    "prefix_hits",          # attaches that reused at least one token
    "prefix_shared_blocks",  # full-block references taken
    "prefix_tokens_reused",  # tokens served from shared/cached blocks
    "prefix_blocks_saved",  # allocations avoided (refs + promotions)
    "cache_promotes",       # cached partial tails taken over in place
    "cow_forks",            # copy-on-write copies of live partial tails
    "prefix_evictions",     # cached blocks reclaimed or replaced
)


@dataclass
class SharedBlock:
    """One identity-bearing KV block.

    ``key`` is the positional content hash ``(namespace, block_index)``;
    ``fill`` is how many of its ``block_size`` token slots hold
    namespace content (a partial tail has ``fill < block_size``);
    ``refs`` counts live requests currently mapping the block.  A block
    with ``refs == 0`` is *cached*: still resident, reusable by the
    next prefix match, evictable under memory pressure.
    """

    key: Tuple
    fill: int
    refs: int = 0


class PrefixBlockTable:
    """Refcounted prefix index over one GPU :class:`BlockPool`.

    Owns no capacity itself: shared and cached blocks live in the pool
    under :data:`SHARED_OWNER`, and every state change re-labels
    ownership via :meth:`BlockPool.transfer` (never allocating), so the
    pool's demand counters keep meaning "blocks actually allocated".
    """

    def __init__(self, pool: BlockPool, stats: Optional[dict] = None) -> None:
        self.pool = pool
        self.stats = stats if stats is not None else {}
        for key in PREFIX_STAT_KEYS:
            self.stats.setdefault(key, 0)
        #: content hash -> block, for every shared *or* cached block.
        self.index: Dict[Tuple, SharedBlock] = {}
        #: refs-0 subset of the index, insertion-ordered: the LRU queue
        #: (oldest-unreferenced first) that :meth:`reclaim` drains.
        self.cached: Dict[Tuple, SharedBlock] = {}
        #: req_id -> (namespace, shareable-token limit or None).
        self.identities: Dict[int, Tuple] = {}
        #: req_id -> contiguous chain of blocks it holds references on.
        self.refs_held: Dict[int, List[SharedBlock]] = {}
        # Requests whose prefill allocation already ran the lookup —
        # an OOM-retried allocation must not take references twice.
        self._attached: set = set()

    # --- registration -----------------------------------------------------
    def register(self, req_id: int, request=None) -> None:
        """Record the request's sharing identity (no-op without one)."""
        if request is None:
            return
        identity = request.sharing_identity()
        if identity is not None:
            self.identities[req_id] = identity

    # --- capacity ---------------------------------------------------------
    @property
    def evictable_blocks(self) -> int:
        """Cached (refs-0) blocks the pool can reclaim on demand."""
        return len(self.cached)

    def reclaim(self, n_blocks: int) -> int:
        """Evict up to ``n_blocks`` cached blocks (LRU first)."""
        freed = 0
        cached = self.cached
        index = self.index
        pool = self.pool
        stats = self.stats
        while freed < n_blocks and cached:
            key = next(iter(cached))
            del cached[key]
            del index[key]
            pool.release(SHARED_OWNER, 1)
            stats["prefix_evictions"] += 1
            freed += 1
        return freed

    # --- refcounting ------------------------------------------------------
    def _ref(self, block: SharedBlock) -> None:
        if block.refs == 0:
            self.cached.pop(block.key, None)
        block.refs += 1

    def _unref(self, block: SharedBlock) -> None:
        block.refs -= 1
        assert block.refs >= 0, f"negative refcount on {block.key}"
        if block.refs == 0:
            self.cached[block.key] = block

    def _drop_entry(self, block: SharedBlock) -> None:
        """Remove a refs-0 entry and free its pool block."""
        self.cached.pop(block.key, None)
        del self.index[block.key]
        self.pool.release(SHARED_OWNER, 1)
        self.stats["prefix_evictions"] += 1

    # --- attach: prefill-time prefix lookup --------------------------------
    def attach(self, req_id: int, record, context_tokens: int) -> None:
        """Map the request's shared prefix onto existing blocks.

        Called once per prefill admission (OOM retries are idempotent):
        walks the namespace chain from block 0, referencing matching
        full blocks; the boundary block — where the request will append
        — is promoted if cached, or forked (copied) if still live.
        Sets ``record.shared_blocks`` to the reference-chain length the
        manager folds into every held-blocks computation.
        """
        if req_id in self._attached:
            return
        identity = self.identities.get(req_id)
        if identity is None:
            return
        self._attached.add(req_id)
        namespace, limit = identity
        span = context_tokens if limit is None else min(context_tokens, limit)
        stats = self.stats
        stats["prefix_lookups"] += 1
        if span <= 0:
            return
        bs = self.pool.block_size
        n_full = span // bs
        index = self.index
        chain = self.refs_held.setdefault(req_id, [])
        reused_tokens = 0
        idx = len(chain)  # 0 on first attach; recompute re-attaches fresh
        while idx < n_full:
            block = index.get((namespace, idx))
            if block is None or block.fill < bs:
                break
            self._ref(block)
            chain.append(block)
            reused_tokens += bs
            idx += 1
        record.shared_blocks = len(chain)
        saved = idx
        stats["prefix_shared_blocks"] += idx
        # Boundary block: the request appends at `span`, so a matching
        # partial entry is either taken over (cached) or copied (live).
        remainder = span - idx * bs
        block = index.get((namespace, idx))
        if block is not None and remainder > 0 and block.fill < bs:
            take = min(block.fill, remainder)
            if block.refs == 0 and block.fill <= remainder:
                # Promote: the cached tail becomes this request's
                # private block — no copy, no fresh allocation.
                self.cached.pop(block.key, None)
                del index[block.key]
                self.pool.transfer(SHARED_OWNER, req_id, 1)
                stats["cache_promotes"] += 1
                saved += 1
                reused_tokens += take
            elif take > 0:
                # Copy-on-write fork: the tail is still referenced (its
                # writer is live), so appending means copying it into a
                # private block (allocated by the normal prefill path).
                stats["cow_forks"] += 1
                reused_tokens += take
        if reused_tokens > 0:
            stats["prefix_hits"] += 1
            stats["prefix_tokens_reused"] += reused_tokens
        stats["prefix_blocks_saved"] += saved

    # --- publish: make a prefilled prefix shareable -------------------------
    def publish(self, req_id: int, record, context_tokens: int) -> None:
        """Move the request's shareable prefix under the shared owner.

        Runs at prefill completion: full blocks within the identity's
        limit (plus the partial tail) become referenced shared blocks,
        so *concurrent* requests of the same namespace can attach to
        them — the lever that makes live prefix hits and true CoW
        forks possible, not just reuse of finished requests' caches.
        """
        identity = self.identities.get(req_id)
        if identity is None:
            return
        namespace, limit = identity
        span = context_tokens if limit is None else min(context_tokens, limit)
        if span <= 0:
            return
        bs = self.pool.block_size
        pool = self.pool
        index = self.index
        chain = self.refs_held.setdefault(req_id, [])
        n_full = span // bs
        for idx in range(len(chain), n_full):
            key = (namespace, idx)
            block = index.get(key)
            if block is not None and block.fill >= bs:
                # Another live request published this span first; drop
                # our private duplicate and reference theirs (held
                # arithmetic is unchanged: -1 private, +1 shared).
                pool.release(req_id, 1)
                self._ref(block)
                chain.append(block)
                continue
            if block is not None:
                if block.refs > 0:
                    # A live partial sits on this key; leave the rest
                    # of our chain private rather than fight over it.
                    break
                self._drop_entry(block)  # stale cached partial
            pool.transfer(req_id, SHARED_OWNER, 1)
            fresh = SharedBlock(key=key, fill=bs, refs=1)
            index[key] = fresh
            chain.append(fresh)
        # Partial tail: shareable content ends mid-block.  Publishing
        # it lets concurrent namespace members fork it (CoW).
        remainder = span - n_full * bs
        if remainder > 0 and len(chain) == n_full:
            key = (namespace, n_full)
            block = index.get(key)
            if block is None or (block.refs == 0 and block.fill < remainder):
                if block is not None:
                    self._drop_entry(block)
                pool.transfer(req_id, SHARED_OWNER, 1)
                fresh = SharedBlock(key=key, fill=remainder, refs=1)
                index[key] = fresh
                chain.append(fresh)
        record.shared_blocks = len(chain)

    # --- detach / finish ----------------------------------------------------
    def detach(self, req_id: int, record) -> None:
        """Drop every reference the request holds (preemption path).

        Blocks whose last reference drops become cached; the request's
        identity survives, and a recompute-resumed prefill attaches
        (and hits) again — preemption never strands refcounts.
        """
        chain = self.refs_held.pop(req_id, None)
        if chain:
            for block in chain:
                self._unref(block)
        record.shared_blocks = 0
        self._attached.discard(req_id)

    def finish(self, req_id: int, record, gpu_tokens: int) -> None:
        """Retire a request: drop references, donate its private chain.

        The shared blocks it referenced are released (last owner out →
        cached, with the fill of a published partial tail refreshed to
        what the request actually wrote); its *private* blocks covering
        the shareable span transfer into the cache so the next prefix
        match — the next session turn, typically — finds the whole
        chain.  Remaining private blocks are freed by the manager's
        ``release_all`` as usual.
        """
        identity = self.identities.pop(req_id, None)
        chain = self.refs_held.pop(req_id, None)
        self._attached.discard(req_id)
        if identity is None:
            assert not chain, f"request {req_id} holds refs without identity"
            return
        namespace, limit = identity
        span = gpu_tokens if limit is None else min(gpu_tokens, limit)
        bs = self.pool.block_size
        shared = 0
        if chain:
            shared = len(chain)
            for i, block in enumerate(chain):
                # The publisher of a partial tail kept appending into
                # it; now that it retires, the cached entry's fill can
                # reflect the final content (bounded by the limit).
                fill = min(bs, span - i * bs)
                if fill > block.fill:
                    block.fill = fill
                self._unref(block)
        if span <= 0:
            return
        pool = self.pool
        index = self.index
        cached = self.cached
        end = -(-span // bs)  # ceil: include the partial tail block
        for idx in range(shared, end):
            fill = min(bs, span - idx * bs)
            key = (namespace, idx)
            existing = index.get(key)
            if existing is not None:
                if existing.refs > 0 or existing.fill >= fill:
                    continue  # keep theirs; ours is freed by release_all
                self._drop_entry(existing)
            pool.transfer(req_id, SHARED_OWNER, 1)
            block = SharedBlock(key=key, fill=fill, refs=0)
            index[key] = block
            cached[key] = block

    # --- consistency --------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert the refcount/ownership invariants (property tests)."""
        assert all(b.refs >= 0 for b in self.index.values())
        assert self.pool.used_by(SHARED_OWNER) == len(self.index), (
            f"shared-owner blocks {self.pool.used_by(SHARED_OWNER)} != "
            f"index size {len(self.index)}"
        )
        zero_ref = {k for k, b in self.index.items() if b.refs == 0}
        assert set(self.cached) == zero_ref, (
            f"cached set {set(self.cached)} != refs-0 set {zero_ref}"
        )
        total_refs = sum(b.refs for b in self.index.values())
        held_refs = sum(len(chain) for chain in self.refs_held.values())
        assert total_refs == held_refs, (
            f"index refs {total_refs} != chain refs {held_refs}"
        )
        for req_id, chain in self.refs_held.items():
            for i in range(1, len(chain)):
                assert chain[i].key[1] == chain[i - 1].key[1] + 1, (
                    f"request {req_id} holds a non-contiguous chain"
                )
