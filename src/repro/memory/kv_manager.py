"""Hierarchical KV cache manager (paper §5).

Manages each request's KV cache across the GPU pool (decode-capable)
and the CPU pool (offload target), implementing TokenFlow's three
memory techniques, each independently switchable for the Table 2
ablation:

* **Write-through** (§5.1): newly generated KV is continuously
  replicated to host memory in the background, so at preemption time
  only the small *dirty tail* still needs transferring.
* **Synchronous chunked writing** (§5.2): replication steals exactly
  the d2h idle time inside each compute interval, sized to the
  executor's estimated iteration duration, so writes never stall the
  scheduler.  Chunks are ordered by a scheduler-supplied priority
  (requests with fatter buffers are likelier preemption victims).
* **Load-evict overlap** (§5.3): loads (h2d) and evictions (d2h) run
  concurrently on the full-duplex link and memory is reclaimed
  incrementally; disabling it serialises loads behind pending
  evictions, as reactive systems do.

The manager is deliberately engine-aware: deferred block frees (the
dirty tail's blocks are only reusable once its transfer completes) are
scheduled as simulation events.

Hot-path bookkeeping is incremental: a persistent *dirty set* (ordered
by registration for deterministic tie-breaks) replaces the per-
iteration scan over every record, and decode-token growth tracks block
boundaries arithmetically instead of re-deriving block counts through
the pool on every generated token.

Allocator policy is pluggable (``KVManagerConfig.kv_allocator``):

* ``"naive"`` (default) — per-request block counts only, exactly the
  historical behaviour, bit-for-bit.
* ``"prefix_cow"`` — a :class:`~repro.memory.blocktable.PrefixBlockTable`
  gives blocks identity: prefill allocation consults the prefix index
  and maps shared prefixes onto existing refcounted blocks (with
  copy-on-write forks and refcount-aware eviction).  Every held-blocks
  computation folds in ``KVRecord.shared_blocks`` — zero under the
  naive allocator, so the arithmetic is an additive no-op there — and
  per-request *logical* growth (``gpu_tokens``) is unchanged, so the
  fused and vectorised decode planes work identically above either
  allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.memory.blocks import BlockPool, OutOfMemory
from repro.memory.blocktable import PrefixBlockTable
from repro.memory.pcie import PCIeLink
from repro.sim.engine import SimEngine


@dataclass(frozen=True)
class KVManagerConfig:
    """Switches and sizes for the KV manager.

    Attributes:
        block_size: tokens per KV block.
        enable_offload: if False, preemption drops the KV cache
            entirely and resumption must recompute (Table 2 "w/o
            Offload").
        write_through: if False, fall back to write-back — the full
            context is transferred at preemption time (Table 2 "w/o
            Write-Through").
        load_evict_overlap: if False, loads wait for every pending
            eviction to finish (Table 2 "w/o Evict-Load Overlap").
        cpu_capacity_blocks: host pool capacity.
        kv_allocator: ``"naive"`` (per-request block counts, the
            default) or ``"prefix_cow"`` (refcounted prefix-sharing
            block table with copy-on-write forks).
    """

    block_size: int = 16
    enable_offload: bool = True
    write_through: bool = True
    load_evict_overlap: bool = True
    cpu_capacity_blocks: int = 4_000_000
    kv_allocator: str = "naive"


@dataclass
class KVRecord:
    """Per-request KV placement state.

    ``gpu_tokens`` is the decode-usable context on the GPU;
    ``cpu_tokens`` the replicated prefix on the host.  The dirty tail
    is ``gpu_tokens - cpu_tokens`` (never negative while resident).
    ``seq`` is the registration order — the deterministic tie-break
    for priority-ordered drains.

    ``shared_blocks`` counts prefix-index blocks this request maps
    (references) instead of owning: its physical holdings are
    ``pool.used_by(req_id) + shared_blocks``.  Always 0 under the
    naive allocator, so folding it into held-block arithmetic is an
    additive no-op there.
    """

    req_id: int
    gpu_tokens: int = 0
    cpu_tokens: int = 0
    resident: bool = False        # True while the request can decode
    pending_free_blocks: int = 0  # blocks awaiting transfer completion
    seq: int = 0
    shared_blocks: int = 0        # prefix-table blocks mapped by reference

    @property
    def dirty_tokens(self) -> int:
        return max(0, self.gpu_tokens - self.cpu_tokens)


class HierarchicalKVManager:
    """GPU/CPU KV cache coordinator for one serving instance."""

    def __init__(
        self,
        engine: SimEngine,
        gpu_capacity_blocks: int,
        kv_bytes_per_token: float,
        pcie_bandwidth_bytes_per_s: float,
        config: Optional[KVManagerConfig] = None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else KVManagerConfig()
        self.gpu_pool = BlockPool(gpu_capacity_blocks, self.config.block_size)
        self.cpu_pool = BlockPool(self.config.cpu_capacity_blocks, self.config.block_size)
        self.link = PCIeLink(pcie_bandwidth_bytes_per_s)
        self.kv_bytes_per_token = float(kv_bytes_per_token)
        self._block_size = self.config.block_size
        self._records: dict[int, KVRecord] = {}
        self._next_seq = 0
        # Resident records with a non-empty dirty tail (req_id -> record),
        # maintained incrementally so the chunked writer never scans the
        # full registry.  Ordering inside is irrelevant — drains sort by
        # (priority desc, registration seq asc).
        self._dirty: dict[int, KVRecord] = {}
        # Optional callback fired whenever deferred frees return blocks
        # to the pool (the serving loop uses it to retry stalled work).
        self.on_memory_freed: Optional[Callable[[], None]] = None
        # Vectorised-decode opt-in: fold the uniform drain's identical
        # per-record PCIe transfers into one occupy_bulk() call.  The
        # link's busy horizon stays bit-identical either way; only the
        # reporting byte/busy totals switch to a closed-form sum, so
        # the default keeps the scalar path's accumulation untouched.
        self.bulk_pcie_accounting = False
        # Counters for the ablation/overhead analysis.
        self.stats = {
            "evictions": 0,
            "loads": 0,
            "recompute_drops": 0,
            "write_through_bytes": 0.0,
            "eviction_tail_bytes": 0.0,
            "load_bytes": 0.0,
        }
        # Optional prefix-sharing block table.  When None (the naive
        # allocator), every hook below is skipped and the manager is
        # bit-identical to the historical count-only behaviour.
        if self.config.kv_allocator == "prefix_cow":
            self.prefix = PrefixBlockTable(self.gpu_pool, self.stats)
        elif self.config.kv_allocator == "naive":
            self.prefix = None
        else:
            raise ValueError(
                f"unknown kv_allocator {self.config.kv_allocator!r} "
                "(expected 'naive' or 'prefix_cow')"
            )

    # --- helpers -------------------------------------------------------------
    def record(self, req_id: int) -> KVRecord:
        if req_id not in self._records:
            raise KeyError(f"request {req_id} is not registered with the KV manager")
        return self._records[req_id]

    def _tokens_to_bytes(self, n_tokens: int) -> float:
        return n_tokens * self.kv_bytes_per_token

    def blocks_for_tokens(self, n_tokens: int) -> int:
        if n_tokens < 0:
            raise ValueError(f"n_tokens must be non-negative, got {n_tokens}")
        return -(-n_tokens // self._block_size)  # ceil division

    def gpu_free_blocks(self) -> int:
        """Blocks the next allocation can claim (free + reclaimable).

        Cached prefix blocks (refs 0) are resident but evictable on
        demand, so admission/fitting decisions count them as free;
        the allocation paths reclaim them just-in-time.
        """
        if self.prefix is not None:
            return self.gpu_pool.free + self.prefix.evictable_blocks
        return self.gpu_pool.free

    def can_allocate_tokens(self, n_tokens: int) -> bool:
        return self.blocks_for_tokens(n_tokens) <= self.gpu_free_blocks()

    def _reclaim_for(self, n_blocks: int) -> None:
        """Evict cached prefix blocks until ``n_blocks`` fit (or give up)."""
        short = n_blocks - self.gpu_pool.free
        if short > 0:
            self.prefix.reclaim(short)

    def _sync_dirty(self, record: KVRecord) -> None:
        """Re-derive the record's dirty-set membership after a mutation."""
        if record.resident and record.gpu_tokens > record.cpu_tokens:
            self._dirty[record.req_id] = record
        else:
            self._dirty.pop(record.req_id, None)

    # --- request lifecycle -----------------------------------------------------
    def register(self, req_id: int, request=None) -> KVRecord:
        """Create the placement record for a new request.

        ``request`` (the workload object) is optional and only
        inspected by the prefix-sharing allocator, which derives the
        request's sharing identity from it.
        """
        if req_id in self._records:
            raise ValueError(f"request {req_id} already registered")
        record = KVRecord(req_id=req_id, seq=self._next_seq)
        self._next_seq += 1
        self._records[req_id] = record
        if self.prefix is not None:
            self.prefix.register(req_id, request)
        return record

    def allocate_for_prefill(self, req_id: int, context_tokens: int) -> None:
        """Reserve GPU blocks for a prefill of ``context_tokens``.

        Raises :class:`OutOfMemory` if the pool cannot hold it; the
        caller (scheduler/server) is responsible for checking first or
        handling the failure.  Under the prefix allocator this first
        consults the prefix index, mapping any shared prefix onto
        existing blocks so only the unshared remainder is allocated.
        """
        record = self.record(req_id)
        needed = self.blocks_for_tokens(context_tokens)
        if self.prefix is not None:
            self.prefix.attach(req_id, record, context_tokens)
            held = (
                self.gpu_pool.used_by(req_id)
                - record.pending_free_blocks
                + record.shared_blocks
            )
            if needed > held:
                self._reclaim_for(needed - held)
                self.gpu_pool.allocate(req_id, needed - held)
            return
        # Blocks whose eviction transfer is still in flight are not
        # reusable: they will be released when the transfer completes.
        held = self.gpu_pool.used_by(req_id) - record.pending_free_blocks
        if needed > held:
            self.gpu_pool.allocate(req_id, needed - held)

    def on_prefill_complete(self, req_id: int, context_tokens: int) -> None:
        """Mark ``context_tokens`` of KV as resident after a prefill."""
        record = self.record(req_id)
        record.gpu_tokens = context_tokens
        record.resident = True
        # A recompute resume regenerates KV the host already holds; the
        # host copy stays valid, so only the excess is dirty.
        record.cpu_tokens = min(record.cpu_tokens, context_tokens)
        self._sync_dirty(record)
        # Publish the freshly computed prefix so concurrent requests of
        # the same namespace can share it live (skipped while an
        # eviction is in flight — those blocks are not transferable).
        if self.prefix is not None and record.pending_free_blocks == 0:
            self.prefix.publish(req_id, record, context_tokens)

    def on_decode_token(self, req_id: int) -> None:
        """Grow the resident context by one generated token.

        Allocates a new block only when the context crosses a block
        boundary (tracked arithmetically — no per-token block-count
        derivation); raises :class:`OutOfMemory` when the pool is full
        (the server then triggers reactive preemption).
        """
        record = self._records.get(req_id)
        if record is None:
            raise KeyError(f"request {req_id} is not registered with the KV manager")
        if not record.resident:
            raise RuntimeError(f"request {req_id} is not resident; cannot decode")
        tokens = record.gpu_tokens
        if tokens % self._block_size == 0:
            # The next token opens a new block.
            needed = tokens // self._block_size + 1
            held = (
                self.gpu_pool.usage.get(req_id, 0)
                - record.pending_free_blocks
                + record.shared_blocks
            )
            if needed > held:
                if self.prefix is not None:
                    self._reclaim_for(needed - held)
                self.gpu_pool.allocate(req_id, needed - held)
        if record.cpu_tokens == tokens:
            # Was fully synced; the new token starts a dirty tail.
            self._dirty[req_id] = record
        record.gpu_tokens = tokens + 1

    def decode_growth_blocks(self, req_id: int) -> int:
        """GPU blocks the next decode token of ``req_id`` would claim.

        Pure query (no allocation) — the serving loop's batch-fitting
        input, flattened to plain arithmetic over the record state.
        """
        record = self._records.get(req_id)
        if record is None:
            raise KeyError(f"request {req_id} is not registered with the KV manager")
        held = (
            self.gpu_pool.usage.get(req_id, 0)
            - record.pending_free_blocks
            + record.shared_blocks
        )
        needed = -(-(record.gpu_tokens + 1) // self._block_size)
        if held <= 0:
            return needed
        growth = needed - held
        return growth if growth > 0 else 0

    def decode_growth_blocks_bulk(self, requests: Sequence) -> dict:
        """:meth:`decode_growth_blocks` for a whole decode batch.

        One call per planning pass instead of one per request; same
        integer arithmetic, keyed by ``req_id``.
        """
        records = self._records
        usage_get = self.gpu_pool.usage.get
        bs = self._block_size
        growth: dict = {}
        for request in requests:
            rid = request.req_id
            try:
                record = records[rid]
            except KeyError:
                raise KeyError(
                    f"request {rid} is not registered with the KV manager"
                ) from None
            held = usage_get(rid, 0) - record.pending_free_blocks + record.shared_blocks
            needed = -(-(record.gpu_tokens + 1) // bs)
            if held <= 0:
                growth[rid] = needed
            else:
                need = needed - held
                growth[rid] = need if need > 0 else 0
        return growth

    # --- macro-step decode fusion ----------------------------------------------
    def max_fused_decode_iterations(self, req_ids: Sequence, k_cap: int) -> int:
        """Largest ``k <= k_cap`` such that ``k`` decode tokens per
        request fit in the GPU pool.

        Pure query over the closed-form block growth (each request's
        block count after ``k`` more tokens is arithmetic on its
        record), binary-searched because growth is monotone in ``k``.
        The fused decode path uses it to stop a macro-step strictly
        before capacity exhaustion — the unfused path would hit the
        reactive-preemption branch there, which fusion must never skip.
        """
        if k_cap <= 0:
            return 0
        free = self.gpu_free_blocks()
        bs = self._block_size
        usage_get = self.gpu_pool.usage.get
        records = self._records
        entries = []
        for rid in req_ids:
            record = records[rid]
            entries.append(
                (
                    record.gpu_tokens,
                    usage_get(rid, 0) - record.pending_free_blocks + record.shared_blocks,
                )
            )

        def growth(k: int) -> int:
            total = 0
            for tokens, held in entries:
                need = (tokens + k - 1) // bs + 1 - held
                if need > 0:
                    total += need
            return total

        if growth(k_cap) <= free:
            return k_cap
        lo, hi = 0, k_cap  # growth(lo) fits, growth(hi) does not
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if growth(mid) <= free:
                lo = mid
            else:
                hi = mid
        return lo

    def cpu_room_for_fused_drains(self, req_ids: Sequence, k: int) -> bool:
        """True if ``k - 1`` uniform one-token write drains for these
        requests keep the host pool above the fast-path watermark.

        The real drain's uniform path requires ``cpu_pool.free >=
        n_dirty`` *every* iteration; host usage only grows during a
        fused window, so checking the post-window free count against
        that bound covers every intermediate drain.
        """
        if k <= 1:
            return True
        bs = self._block_size
        used_by = self.cpu_pool.usage.get
        records = self._records
        growth = 0
        for rid in req_ids:
            record = records[rid]
            target = record.gpu_tokens + k - 1
            need = -(-target // bs) - used_by(rid, 0)
            if need > 0:
                growth += need
        return self.cpu_pool.free - growth >= len(req_ids)

    def fused_decode_advance(
        self,
        req_ids: Sequence,
        k: int,
        drain_starts: Optional[Sequence] = None,
    ) -> None:
        """Apply ``k`` decode iterations of KV bookkeeping in one update.

        Equivalent to ``k`` rounds of per-token :meth:`on_decode_token`
        over the batch interleaved with ``k - 1`` uniform-fast-path
        :meth:`drain_writes` calls at ``drain_starts`` (the fused
        window's intermediate iteration boundaries): GPU block growth
        lands as one allocation per request, the host copy advances to
        the second-to-last token, and each request ends with exactly
        its newest token dirty.  ``drain_starts`` is ``None`` when
        write-through (or offload) is disabled — then only the GPU side
        grows, as the per-iteration path would.

        Preconditions (the serving loop checks them before fusing): all
        requests resident, every dirty tail fully synced beforehand,
        GPU growth within :meth:`max_fused_decode_iterations`, host
        room per :meth:`cpu_room_for_fused_drains`, and per-iteration
        d2h budget covering one token per request.
        """
        if k <= 0:
            return
        bs = self._block_size
        gpu_pool = self.gpu_pool
        usage_get = gpu_pool.usage.get
        records = self._records
        dirty = self._dirty
        with_drains = drain_starts is not None and k > 1
        prefix = self.prefix
        for rid in req_ids:
            record = records[rid]
            tokens = record.gpu_tokens
            needed = (tokens + k - 1) // bs + 1
            held = usage_get(rid, 0) - record.pending_free_blocks + record.shared_blocks
            if needed > held:
                if prefix is not None:
                    self._reclaim_for(needed - held)
                gpu_pool.allocate(rid, needed - held)
            record.gpu_tokens = tokens + k
            if with_drains:
                target = tokens + k - 1
                if -(-target // bs) > self.cpu_pool.usage.get(rid, 0):
                    self._grow_cpu_copy(record, target)
                record.cpu_tokens = target
            dirty[rid] = record
        if with_drains:
            n = len(req_ids)
            nbytes = self.kv_bytes_per_token
            d2h = self.link.d2h
            stats = self.stats
            per_drain_bytes = n * nbytes
            for start in drain_starts:
                d2h.occupy_bulk(n, nbytes, start)
                stats["write_through_bytes"] += per_drain_bytes

    def release(self, req_id: int) -> None:
        """Drop all state for a finished (or aborted) request.

        Under the prefix allocator the request first retires through
        the block table: its references drop (a shared block is only
        freeable once its last owner retires) and its private prefix
        blocks are donated to the cache for the next prefix match.
        """
        record = self._records.pop(req_id, None)
        if record is None:
            return
        self._dirty.pop(req_id, None)
        if self.prefix is not None:
            self.prefix.finish(req_id, record, record.gpu_tokens)
        self.gpu_pool.release_all(req_id)
        self.cpu_pool.release_all(req_id)

    # --- write-through / chunked writing ---------------------------------------
    def write_backlog_tokens(self) -> int:
        """Dirty tokens across resident requests (write queue depth)."""
        if not self.config.write_through:
            return 0
        return sum(
            record.gpu_tokens - record.cpu_tokens
            for record in self._dirty.values()
        )

    def write_backlog_bytes(self) -> float:
        return self._tokens_to_bytes(self.write_backlog_tokens())

    def drain_writes(
        self,
        now: float,
        horizon: float,
        priority: Optional[Callable[[int], float]] = None,
    ) -> int:
        """Synchronous chunked writing: replicate dirty KV during compute.

        Writes as many dirty tokens as fit in the d2h direction's idle
        time within ``[now, horizon]`` (the estimated duration of the
        next compute iteration), highest ``priority(req_id)`` first
        (ties broken by registration order).

        Returns the number of tokens synced.
        """
        if not self.config.write_through or not self.config.enable_offload:
            return 0
        if not self._dirty:
            return 0
        if not self.config.load_evict_overlap:
            # Serialised transfers: writes may not overlap in-flight
            # loads (the half-duplex baseline of §5.3).
            now = max(now, self.link.h2d.busy_until())
        budget_bytes = self.link.d2h.idle_bytes_within(now, horizon)
        if budget_bytes <= 0:
            return 0
        # Steady-state fast path: when every dirty tail is the same
        # size (the common case — one fresh token per resident request
        # per decode step) and the budget plus host pool cover the
        # whole backlog, every record fully syncs the same number of
        # tokens no matter the order.  All per-record transfers are
        # then identical, so every float accumulation (link busy time,
        # budget, stats) is bit-identical to the priority-ordered loop
        # — the ranking would be pure overhead.
        uniform = -1
        for record in self._dirty.values():
            tail = record.gpu_tokens - record.cpu_tokens
            if uniform < 0:
                uniform = tail
            elif tail != uniform:
                uniform = -1
                break
        if uniform > 0:
            n_dirty = len(self._dirty)
            kv_bytes_per_token = self.kv_bytes_per_token
            nbytes = uniform * kv_bytes_per_token
            # Worst-case host growth: every record opens one new block
            # plus whatever the tail itself spans.
            block_bound = n_dirty * (uniform // self._block_size + 1)
            if (
                budget_bytes >= n_dirty * nbytes
                and self.cpu_pool.free >= block_bound
            ):
                d2h = self.link.d2h
                cpu_pool = self.cpu_pool
                block_size = self._block_size
                stats = self.stats
                cpu_usage = cpu_pool.usage
                bulk_occupy = self.bulk_pcie_accounting
                for record in list(self._dirty.values()):
                    target = record.cpu_tokens + uniform
                    if -(-target // block_size) > cpu_usage.get(record.req_id, 0):
                        self._grow_cpu_copy(record, target)
                    if not bulk_occupy:
                        d2h.occupy(nbytes, now)
                    record.cpu_tokens = target
                    self._dirty.pop(record.req_id, None)
                    budget_bytes -= nbytes
                    stats["write_through_bytes"] += nbytes
                if bulk_occupy:
                    # The transfers are identical, so one bulk call
                    # replays the exact busy-horizon additions.
                    d2h.occupy_bulk(n_dirty, nbytes, now)
                return n_dirty * uniform
        if priority is not None:
            # Highest priority first; registration order breaks ties —
            # exactly the order a stable descending sort over the
            # registration-ordered registry would produce.
            dirty = sorted(
                self._dirty.values(),
                key=lambda r: (-priority(r.req_id), r.seq),
            )
        else:
            dirty = sorted(self._dirty.values(), key=lambda r: r.seq)
        synced_total = 0
        kv_bytes_per_token = self.kv_bytes_per_token
        d2h = self.link.d2h
        cpu_pool = self.cpu_pool
        block_size = self._block_size
        stats = self.stats
        dirty_set = self._dirty
        for record in dirty:
            if budget_bytes < kv_bytes_per_token:
                break
            affordable = int(budget_bytes // kv_bytes_per_token)
            cpu_tokens = record.cpu_tokens
            n_sync = record.gpu_tokens - cpu_tokens
            if n_sync > affordable:
                n_sync = affordable
            if n_sync <= 0:
                continue
            target = cpu_tokens + n_sync
            # Fast path: the host copy only grows a block every
            # `block_size` tokens; skip the pool round-trip otherwise.
            if -(-target // block_size) > cpu_pool.usage.get(record.req_id, 0):
                if not self._grow_cpu_copy(record, target):
                    continue  # host pool exhausted; skip this request
            nbytes = n_sync * kv_bytes_per_token
            d2h.occupy(nbytes, now)
            record.cpu_tokens = target
            if target >= record.gpu_tokens:
                dirty_set.pop(record.req_id, None)
            budget_bytes -= nbytes
            synced_total += n_sync
            stats["write_through_bytes"] += nbytes
        return synced_total

    def _grow_cpu_copy(self, record: KVRecord, target_tokens: int) -> bool:
        """Ensure the host pool holds blocks for ``target_tokens``."""
        needed = self.cpu_pool.blocks_for_tokens(target_tokens)
        held = self.cpu_pool.used_by(record.req_id)
        if needed <= held:
            return True
        if not self.cpu_pool.can_allocate(needed - held):
            return False
        self.cpu_pool.allocate(record.req_id, needed - held)
        return True

    # --- preemption -----------------------------------------------------------
    def preempt(self, req_id: int, now: float) -> float:
        """Offload (or drop) a resident request's KV cache.

        Returns the time at which the request's GPU memory is fully
        reclaimed.  With write-through, already-synced blocks are freed
        immediately and only the dirty tail pays a transfer; with
        write-back the full context is written out; with offload
        disabled the cache is simply dropped (resume must recompute).
        """
        record = self.record(req_id)
        if not record.resident:
            raise RuntimeError(f"request {req_id} is not resident; cannot preempt")
        record.resident = False
        self._dirty.pop(req_id, None)
        if self.prefix is not None:
            # Drop prefix references first: the paths below release or
            # transfer only the request's *private* blocks, and a
            # recompute-resumed prefill re-attaches (and hits) again.
            self.prefix.detach(req_id, record)
        if not self.config.enable_offload:
            self.gpu_pool.release_all(req_id)
            self.cpu_pool.release_all(req_id)
            record.cpu_tokens = 0
            record.gpu_tokens = 0
            self.stats["recompute_drops"] += 1
            return now
        self.stats["evictions"] += 1
        dirty = record.dirty_tokens if self.config.write_through else record.gpu_tokens
        if dirty > 0 and not self._grow_cpu_copy(record, record.gpu_tokens):
            # Host pool full: degrade to a drop (rare, but must not wedge).
            self.gpu_pool.release_all(req_id)
            self.cpu_pool.release_all(req_id)
            record.cpu_tokens = 0
            record.gpu_tokens = 0
            self.stats["recompute_drops"] += 1
            return now
        total_blocks = self.gpu_pool.used_by(req_id)
        dirty_blocks = self.gpu_pool.blocks_for_tokens(dirty)
        if self.prefix is not None and dirty_blocks > total_blocks:
            # The dirty tail spans blocks the request maps from the
            # prefix index; those were detached above, so the deferred
            # free must cover private holdings only (the transfer still
            # writes the full dirty byte count — the host copy is
            # per-request).
            dirty_blocks = total_blocks
        clean_blocks = max(0, total_blocks - dirty_blocks)
        if clean_blocks > 0:
            self.gpu_pool.release(req_id, clean_blocks)
        if dirty > 0:
            nbytes = self._tokens_to_bytes(dirty)
            earliest = 0.0
            if not self.config.load_evict_overlap:
                # Serialised transfers: the eviction waits for loads.
                earliest = self.link.h2d.busy_until()
            job = self.link.d2h.submit(nbytes, now, earliest_start=earliest)
            self.stats["eviction_tail_bytes"] += nbytes
            record.cpu_tokens = record.gpu_tokens
            record.pending_free_blocks += dirty_blocks
            self.engine.call_at(
                job.end,
                lambda: self._complete_eviction(req_id, dirty_blocks),
                label=f"evict-done:{req_id}",
            )
            done = job.end
        else:
            if dirty_blocks > 0:
                self.gpu_pool.release(req_id, dirty_blocks)
            done = now
        record.gpu_tokens = 0
        return done

    def _complete_eviction(self, req_id: int, n_blocks: int) -> None:
        record = self._records.get(req_id)
        if record is None:
            return  # request finished/aborted meanwhile
        release = min(n_blocks, self.gpu_pool.used_by(req_id), record.pending_free_blocks)
        if release > 0:
            self.gpu_pool.release(req_id, release)
        record.pending_free_blocks = max(0, record.pending_free_blocks - n_blocks)
        if release > 0 and self.on_memory_freed is not None:
            self.on_memory_freed()

    # --- resumption -----------------------------------------------------------
    def can_resume_load(self, req_id: int) -> bool:
        """True if the host holds a copy and the GPU pool has room."""
        record = self.record(req_id)
        if record.cpu_tokens <= 0 or not self.config.enable_offload:
            return False
        needed = self.blocks_for_tokens(record.cpu_tokens)
        held = (
            self.gpu_pool.used_by(req_id)
            - record.pending_free_blocks
            + record.shared_blocks
        )
        return max(0, needed - max(0, held)) <= self.gpu_free_blocks()

    def resume_load(self, req_id: int, now: float) -> float:
        """Start loading a preempted request's KV back to the GPU.

        GPU blocks are reserved immediately (the transfer lands into
        them); returns the transfer completion time at which the
        request becomes decode-usable again.
        """
        record = self.record(req_id)
        if record.resident:
            raise RuntimeError(f"request {req_id} is already resident")
        if record.cpu_tokens <= 0:
            raise RuntimeError(f"request {req_id} has no host copy; recompute instead")
        needed = self.blocks_for_tokens(record.cpu_tokens)
        held = max(
            0,
            self.gpu_pool.used_by(req_id)
            - record.pending_free_blocks
            + record.shared_blocks,
        )
        if needed > held:
            if self.prefix is not None:
                self._reclaim_for(needed - held)
            self.gpu_pool.allocate(req_id, needed - held)
        earliest = 0.0
        if not self.config.load_evict_overlap:
            earliest = self.link.d2h.busy_until()
        nbytes = self._tokens_to_bytes(record.cpu_tokens)
        job = self.link.h2d.submit(nbytes, now, earliest_start=earliest)
        self.stats["loads"] += 1
        self.stats["load_bytes"] += nbytes
        record.gpu_tokens = record.cpu_tokens
        record.resident = True
        self._sync_dirty(record)
        return job.end

    def prepare_recompute(self, req_id: int) -> None:
        """Drop the host copy ahead of a recompute-based resume."""
        record = self.record(req_id)
        if record.resident:
            raise RuntimeError(f"request {req_id} is resident; nothing to recompute")
        self.cpu_pool.release_all(req_id)
        record.cpu_tokens = 0

    # --- estimators (feed the scheduler) ----------------------------------------
    def estimate_io_time(self, context_tokens: int, dirty_tokens: int, now: float) -> float:
        """Estimate t_IO = evict queueing + evict + load queueing + load.

        Mirrors the paper §4.2.3 decomposition using current queue
        horizons and profiled (configured) bandwidth.
        """
        evict_bytes = self._tokens_to_bytes(dirty_tokens)
        load_bytes = self._tokens_to_bytes(context_tokens)
        t_evict_q = self.link.d2h.queueing_delay(now)
        t_evict = self.link.d2h.transfer_seconds(evict_bytes)
        t_load_q = self.link.h2d.queueing_delay(now)
        t_load = self.link.h2d.transfer_seconds(load_bytes)
        return t_evict_q + t_evict + t_load_q + t_load

    def resident_requests(self) -> Iterable[int]:
        return [rid for rid, record in self._records.items() if record.resident]

    def check_invariants(self) -> None:
        """Pool-level consistency checks for property tests."""
        self.gpu_pool.check_invariants()
        self.cpu_pool.check_invariants()
        if self.prefix is not None:
            self.prefix.check_invariants()
        for record in self._records.values():
            assert record.cpu_tokens >= 0 and record.gpu_tokens >= 0
            assert record.shared_blocks >= 0
            if self.prefix is not None:
                chain = self.prefix.refs_held.get(record.req_id, ())
                assert record.shared_blocks == len(chain), (
                    f"request {record.req_id} shared_blocks={record.shared_blocks} "
                    f"but holds {len(chain)} references"
                )
            if record.resident:
                held = self.gpu_pool.used_by(record.req_id) + record.shared_blocks
                assert held >= self.gpu_pool.blocks_for_tokens(record.gpu_tokens) - record.pending_free_blocks
        # The dirty set is exactly {resident records with a dirty tail}.
        expected_dirty = {
            rid
            for rid, record in self._records.items()
            if record.resident and record.dirty_tokens > 0
        }
        assert set(self._dirty) == expected_dirty, (
            f"dirty set {set(self._dirty)} != expected {expected_dirty}"
        )
