"""Block-granular KV pool allocator.

KV memory is managed in fixed-size blocks of ``block_size`` tokens
(PagedAttention-style).  The pool tracks per-owner usage so leaks are
detectable and the scheduler's memory constraint ``Σ x_i·l_i ≤ M`` can
be enforced exactly.

Invariants (asserted by :meth:`BlockPool.check_invariants`, exercised
by the property suites):

* ``0 <= used <= capacity`` and ``used + free == capacity`` at every
  instant;
* ``used`` equals the sum of all per-owner counts, and no owner entry
  is ever zero or negative;
* ``peak`` / ``total_allocated`` are monotone — the high-water mark
  and the cumulative allocation demand (ownership *transfers* move
  blocks between owners without counting as new demand).
"""

from __future__ import annotations

from typing import Iterable


class OutOfMemory(RuntimeError):
    """Raised when an allocation exceeds the pool's free capacity."""


class BlockPool:
    """Fixed-capacity pool of KV blocks with per-owner accounting."""

    def __init__(self, capacity_blocks: int, block_size: int = 16) -> None:
        if capacity_blocks <= 0:
            raise ValueError(f"capacity_blocks must be positive, got {capacity_blocks}")
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.capacity = capacity_blocks
        self.block_size = block_size
        self._used = 0
        # Lifetime accounting: the high-water mark of `used` and the
        # cumulative block demand (every allocate() call; ownership
        # transfers excluded).  Pure integer bumps on the allocation
        # path — they never change allocation behaviour.
        self.peak = 0
        self.total_allocated = 0
        self._owners: dict[int, int] = {}
        # Read-only alias of the per-owner map for hot-path queries
        # (`pool.usage.get(owner, 0)` == `pool.used_by(owner)` without
        # the method call); the dict object is never rebound.
        self.usage = self._owners

    # --- size helpers -----------------------------------------------------
    def blocks_for_tokens(self, n_tokens: int) -> int:
        """Blocks required to hold ``n_tokens`` of KV cache."""
        if n_tokens < 0:
            raise ValueError(f"n_tokens must be non-negative, got {n_tokens}")
        return -(-n_tokens // self.block_size)  # ceil division

    # --- queries ------------------------------------------------------------
    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def used_by(self, owner: int) -> int:
        return self._owners.get(owner, 0)

    def owners(self) -> Iterable[int]:
        return self._owners.keys()

    def can_allocate(self, n_blocks: int) -> bool:
        return n_blocks <= self.free

    # --- mutation ------------------------------------------------------------
    def allocate(self, owner: int, n_blocks: int) -> None:
        """Allocate ``n_blocks`` to ``owner``; raises OutOfMemory if short."""
        if n_blocks < 0:
            raise ValueError(f"n_blocks must be non-negative, got {n_blocks}")
        if n_blocks > self.free:
            raise OutOfMemory(
                f"owner {owner} requested {n_blocks} blocks, only {self.free} free "
                f"(capacity {self.capacity})"
            )
        if n_blocks == 0:
            return
        self._used += n_blocks
        if self._used > self.peak:
            self.peak = self._used
        self.total_allocated += n_blocks
        self._owners[owner] = self._owners.get(owner, 0) + n_blocks

    def transfer(self, src: int, dst: int, n_blocks: int) -> None:
        """Move ``n_blocks`` of ownership from ``src`` to ``dst``.

        Pure re-labelling: ``used`` is unchanged and neither ``peak``
        nor ``total_allocated`` advances (the blocks were already
        counted when first allocated).  The prefix-sharing block table
        uses this to publish a request's blocks to the shared owner and
        to promote cached blocks back to a request.
        """
        if n_blocks < 0:
            raise ValueError(f"n_blocks must be non-negative, got {n_blocks}")
        if src == dst or n_blocks == 0:
            return
        held = self._owners.get(src, 0)
        if n_blocks > held:
            raise ValueError(
                f"owner {src} transferring {n_blocks} blocks but holds only {held}"
            )
        if held == n_blocks:
            del self._owners[src]
        else:
            self._owners[src] = held - n_blocks
        self._owners[dst] = self._owners.get(dst, 0) + n_blocks

    def release(self, owner: int, n_blocks: int) -> None:
        """Return ``n_blocks`` of ``owner``'s allocation to the pool."""
        if n_blocks < 0:
            raise ValueError(f"n_blocks must be non-negative, got {n_blocks}")
        held = self._owners.get(owner, 0)
        if n_blocks > held:
            raise ValueError(
                f"owner {owner} releasing {n_blocks} blocks but holds only {held}"
            )
        if n_blocks == 0:
            return
        self._used -= n_blocks
        if held == n_blocks:
            del self._owners[owner]
        else:
            self._owners[owner] = held - n_blocks

    def release_all(self, owner: int) -> int:
        """Release everything held by ``owner``; returns block count."""
        held = self._owners.pop(owner, 0)
        self._used -= held
        return held

    def check_invariants(self) -> None:
        """Assert internal consistency (used by property tests)."""
        total = sum(self._owners.values())
        assert total == self._used, f"owner sum {total} != used {self._used}"
        assert 0 <= self._used <= self.capacity
        assert all(count > 0 for count in self._owners.values())
        assert self.peak >= self._used and self.peak <= self.capacity
