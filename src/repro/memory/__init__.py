"""Hierarchical KV-cache memory substrate.

Four layers:

* :mod:`repro.memory.blocks` — block-granular pool allocators for the
  GPU and CPU KV pools (PagedAttention-style per-owner accounting,
  plus the ownership ``transfer`` primitive prefix sharing builds on).
* :mod:`repro.memory.blocktable` — the optional ``prefix_cow``
  allocator policy: refcounted shared blocks keyed by positional
  content hash, cache promotion, copy-on-write forks, and a refs-0
  LRU cache reclaimed under pressure (see docs/memory-model.md).
* :mod:`repro.memory.pcie` — the host link: per-direction bandwidth
  queues with chunked-transfer accounting (full duplex, as on PCIe).
* :mod:`repro.memory.kv_manager` — TokenFlow's hierarchical KV cache
  manager: write-through replication, synchronous chunked writing
  sized to compute intervals, load-evict overlap, the ablation
  switches used by Table 2, and the ``kv_allocator`` policy switch
  (``naive`` counts-only vs ``prefix_cow`` identity blocks).
"""

from repro.memory.blocks import BlockPool, OutOfMemory
from repro.memory.blocktable import PrefixBlockTable, SharedBlock, SHARED_OWNER
from repro.memory.pcie import PCIeDirection, PCIeLink, TransferJob
from repro.memory.kv_manager import HierarchicalKVManager, KVManagerConfig, KVRecord

__all__ = [
    "BlockPool",
    "OutOfMemory",
    "PrefixBlockTable",
    "SharedBlock",
    "SHARED_OWNER",
    "PCIeDirection",
    "PCIeLink",
    "TransferJob",
    "HierarchicalKVManager",
    "KVManagerConfig",
    "KVRecord",
]
