"""Hierarchical KV-cache memory substrate.

Three layers:

* :mod:`repro.memory.blocks` — block-granular pool allocators for the
  GPU and CPU KV pools (PagedAttention-style accounting).
* :mod:`repro.memory.pcie` — the host link: per-direction bandwidth
  queues with chunked-transfer accounting (full duplex, as on PCIe).
* :mod:`repro.memory.kv_manager` — TokenFlow's hierarchical KV cache
  manager: write-through replication, synchronous chunked writing
  sized to compute intervals, load-evict overlap, and the ablation
  switches used by Table 2.
"""

from repro.memory.blocks import BlockPool, OutOfMemory
from repro.memory.pcie import PCIeDirection, PCIeLink, TransferJob
from repro.memory.kv_manager import HierarchicalKVManager, KVManagerConfig, KVRecord

__all__ = [
    "BlockPool",
    "OutOfMemory",
    "PCIeDirection",
    "PCIeLink",
    "TransferJob",
    "HierarchicalKVManager",
    "KVManagerConfig",
    "KVRecord",
]
