"""Declarative scenario specification.

A :class:`ScenarioSpec` names everything one serving run needs —
workload, hardware, model, scheduler/system, router, replica count,
seed, horizon — in one frozen value object.  Experiments, benchmarks
and the CLI all hand a spec to
:func:`repro.scenarios.build.build_run`, so every entrypoint wires
systems identically (the "one pipeline" invariant).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Union

from repro.serving.routers import ROUTERS, Router


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, fully-determined serving scenario.

    Attributes:
        name: scenario identifier (registry key or ad-hoc label).
        description: one-line human description.
        doc: longer catalogue entry (what the scenario exercises and
            which axes matter) — rendered by
            ``repro list-scenarios --long``.
        system: evaluated system name (scheduler + KV wiring), as
            understood by :func:`repro.experiments.systems.build_system`.
        hardware: hardware spec or name (e.g. "h200").
        model: model spec or name (e.g. "llama3-8b").
        mem_frac: KV-pool share of device memory (None = derived).
        max_batch: decode batch cap per instance.
        block_size: KV block size in tokens.
        replicas: number of serving instances; >1 builds a
            :class:`~repro.serving.cluster.ServingCluster`.
        router: cluster routing policy name (or Router instance) —
            ignored when ``replicas == 1``.
        shards: shard worker processes for cluster runs; >1 builds a
            :class:`~repro.serving.shard.ShardedServingCluster`
            (bit-identical reports, parallel replica simulation).
            Clamped to ``replicas``; ignored when ``replicas == 1``.
        speculation: speculative dispatch in sharded runs (see
            :class:`~repro.serving.shard.ShardedServingCluster`):
            trajectory-snapshot mirroring that collapses stateful-router
            coordination rounds.  ``False`` forces the pause-round
            protocol on every stateful dispatch (the pre-speculation
            behaviour); placements and reports are bit-identical either
            way.  Ignored when ``shards == 1``.
        seed: root RNG seed for the workload.
        scale: workload scale factor (scenario builders shrink crowd
            sizes / horizons proportionally, like the experiments).
        horizon: simulation-time safety horizon for :meth:`execute`.
        workload: callable ``spec -> list[Request]`` materialising the
            workload (None for ad-hoc specs driven with explicit
            request lists).
        workload_stream: callable ``spec -> Iterator[Request]`` yielding
            the workload lazily in arrival order — the streaming plane's
            spelling.  A spec with only a stream factory executes
            through :meth:`ServingSystem.feed`; when both factories are
            set they must describe the same request sequence
            (:meth:`build_workload` falls back to draining the stream).
        retain_per_request: telemetry mode (see
            :class:`~repro.serving.config.ServingConfig`); ``False``
            retires finished requests into streaming accumulators so
            memory stays O(active) — the soak scenarios' setting.
        tokenflow_params: optional TokenFlow parameter overrides.
        fuse_decode: macro-step decode fusion switch (see
            :class:`~repro.serving.config.ServingConfig`); off runs one
            event per decode iteration, for debugging and fused-vs-
            unfused parity/perf diffs.
        vectorize_decode: struct-of-arrays batch delivery switch (see
            :class:`~repro.serving.config.ServingConfig`); off runs
            the scalar per-request path bit-for-bit.
        kv_allocator: KV block allocator policy — ``"naive"``
            (per-request block counts, the historical behaviour,
            bit-for-bit) or ``"prefix_cow"`` (refcounted prefix-sharing
            block table with copy-on-write forks; see
            :mod:`repro.memory.blocktable`).
        record_token_traces: keep per-token buffer traces (plots/export).
    """

    name: str
    description: str = ""
    doc: str = ""
    system: str = "tokenflow"
    hardware: Union[str, object] = "h200"
    model: Union[str, object] = "llama3-8b"
    mem_frac: Optional[float] = None
    max_batch: int = 64
    block_size: int = 16
    replicas: int = 1
    router: Union[str, Router] = "least_loaded"
    shards: int = 1
    speculation: bool = True
    seed: int = 0
    scale: float = 1.0
    horizon: float = 50_000.0
    workload: Optional[Callable[["ScenarioSpec"], list]] = None
    workload_stream: Optional[Callable[["ScenarioSpec"], Iterator]] = None
    tokenflow_params: Optional[object] = None
    fuse_decode: bool = True
    vectorize_decode: bool = True
    kv_allocator: str = "naive"
    retain_per_request: bool = True
    record_token_traces: bool = False

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ValueError(f"replicas must be positive, got {self.replicas}")
        if self.shards <= 0:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if isinstance(self.router, str) and self.router not in ROUTERS:
            raise ValueError(
                f"unknown router {self.router!r}; known: {sorted(ROUTERS)}"
            )
        if self.kv_allocator not in ("naive", "prefix_cow"):
            raise ValueError(
                f"unknown kv_allocator {self.kv_allocator!r} "
                "(expected 'naive' or 'prefix_cow')"
            )

    def with_overrides(self, **changes) -> "ScenarioSpec":
        """A copy of this spec with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def build_workload(self) -> list:
        """Materialise the spec's request list.

        Falls back to draining :attr:`workload_stream` for stream-only
        specs (tools that need the full list — parity tests, ad-hoc
        inspection — can always get one; it is the serving path that
        avoids materialisation, not the spec API).
        """
        if self.workload is not None:
            return self.workload(self)
        if self.workload_stream is not None:
            return list(self.workload_stream(self))
        raise ValueError(
            f"scenario {self.name!r} has no workload factory; pass an "
            f"explicit request list to build_run instead"
        )

    def build_workload_stream(self) -> Iterator:
        """The spec's lazy request stream.

        Stream-native specs call their factory; list-only specs fall
        back to iterating the materialised workload (same sequence,
        no memory win — existing scenarios keep working through the
        streaming execute path unchanged).
        """
        if self.workload_stream is not None:
            return self.workload_stream(self)
        return iter(self.build_workload())

    @property
    def is_stream_native(self) -> bool:
        """True when the workload exists only as a stream factory."""
        return self.workload is None and self.workload_stream is not None
