"""The one run pipeline: ``ScenarioSpec`` -> built system -> report.

Every entrypoint — ``repro run``, the experiment runners, the
benchmark suite — builds serving runs through :func:`build_run`, so a
scenario behaves identically no matter where it is launched from.

``build_run`` returns a :class:`ScenarioRun` rather than executing
immediately: experiment code that needs the live system afterwards
(timelines, tracker entries, mid-run snapshots) executes the run and
then inspects ``run.target``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional, Union

from repro.scenarios.spec import ScenarioSpec
from repro.serving.cluster import ClusterReport, ServingCluster
from repro.serving.config import ServingConfig
from repro.serving.metrics import RunReport
from repro.serving.server import ServingSystem
from repro.workload.request import clone_requests


@dataclass
class ScenarioRun:
    """A built-but-not-yet-executed scenario.

    Attributes:
        spec: the scenario that produced this run.
        target: the built :class:`ServingSystem` (``replicas == 1``) or
            :class:`ServingCluster`.
        requests: the materialised workload (cloned at execute time, so
            one :class:`ScenarioRun` template's requests can seed
            several runs), or ``None`` for stream-native scenarios —
            those build a fresh lazy stream per execute and never hold
            the full workload in memory.
    """

    spec: ScenarioSpec
    target: Union[ServingSystem, ServingCluster]
    requests: Optional[list]

    @property
    def is_cluster(self) -> bool:
        from repro.serving.shard import ShardedServingCluster

        return isinstance(self.target, (ServingCluster, ShardedServingCluster))

    def execute(self, streamed: Optional[bool] = None) -> Union[RunReport, ClusterReport]:
        """Run the workload, drain the engine, and report.

        Stream-native runs (``requests is None``) feed the engine from
        the spec's lazy stream; materialised runs submit the cloned
        request list exactly as before.  ``streamed=True`` forces the
        :meth:`feed` path for a materialised run (the streams are
        event-for-event identical to submission — this is the parity
        tests' lever, and costs nothing but the clone).

        Raises ``RuntimeError`` if requests remain unfinished at the
        spec's horizon — a mis-sized workload, not a soft failure.
        """
        spec = self.spec
        if streamed is None:
            streamed = self.requests is None
        if streamed:
            if self.requests is None:
                stream = spec.build_workload_stream()
            else:
                stream = iter(clone_requests(self.requests))
            self.target.feed(stream)
        else:
            # Forcing the submit path on a stream-native run loses the
            # memory win but is well-defined: materialise the stream.
            requests = (
                self.requests if self.requests is not None
                else spec.build_workload()
            )
            self.target.submit(clone_requests(requests))
        self.target.run(until=spec.horizon)
        if self.target.unfinished:
            raise RuntimeError(
                f"{self._label()}: {self.target.unfinished} requests unfinished "
                f"at horizon {spec.horizon}s — raise the horizon or shrink the "
                f"workload"
            )
        return self.target.report()

    def _label(self) -> str:
        # Ad-hoc comparison specs label errors by system name (the
        # pre-scenario message format); named scenarios by scenario.
        return self.spec.name or self.spec.system


def run_matrix(matrix, **kwargs):
    """Run a scenario matrix; see :func:`repro.orchestration.run_matrix`.

    Lives here so the scenarios layer exposes both entrypoints — one
    cell (:func:`build_run`) and a whole matrix — from one module; the
    implementation stays in :mod:`repro.orchestration`, which imports
    this module (hence the lazy import).
    """
    from repro.orchestration import run_matrix as _run_matrix

    return _run_matrix(matrix, **kwargs)


def build_run(spec: ScenarioSpec, requests: Optional[list] = None) -> ScenarioRun:
    """Build the serving target for ``spec`` (single node or cluster).

    ``requests`` overrides the spec's workload factory — comparison
    runners pass one shared request list across several specs.
    """
    # Imported here: repro.experiments.runner (imported by the package
    # __init__) itself routes through this module, and Python cannot
    # resolve that cycle at import time.
    from repro.experiments.systems import (
        SchedulerRecipe,
        build_system,
        make_kv_config,
    )

    if requests is None and not spec.is_stream_native:
        requests = spec.build_workload()

    if spec.replicas == 1:
        system = build_system(
            spec.system,
            hardware=spec.hardware,
            model=spec.model,
            mem_frac=spec.mem_frac,
            max_batch=spec.max_batch,
            block_size=spec.block_size,
            tokenflow_params=spec.tokenflow_params,
            fuse_decode=spec.fuse_decode,
            vectorize_decode=spec.vectorize_decode,
            kv_allocator=spec.kv_allocator,
            retain_per_request=spec.retain_per_request,
            record_token_traces=spec.record_token_traces,
        )
        return ScenarioRun(spec=spec, target=system, requests=requests)

    configs = [
        ServingConfig(
            hardware=spec.hardware,
            model=spec.model,
            mem_frac=spec.mem_frac,
            max_batch=spec.max_batch,
            block_size=spec.block_size,
            kv=make_kv_config(spec.system, spec.block_size, spec.kv_allocator),
            fuse_decode=spec.fuse_decode,
            vectorize_decode=spec.vectorize_decode,
            retain_per_request=spec.retain_per_request,
            record_token_traces=spec.record_token_traces,
        )
        for _ in range(spec.replicas)
    ]

    # A picklable factory (not a closure): the sharded cluster ships
    # it to worker processes, and the classic cluster calls it the
    # same way — each instance gets a fresh scheduler stamped with the
    # experiment's system name.
    scheduler_factory = SchedulerRecipe(spec.system, spec.tokenflow_params)

    # Router names resolve to a fresh instance inside the cluster; a
    # Router *instance* on the spec is copied so its state (stripe
    # counters, sticky session maps) never leaks between runs of the
    # same spec — repeated builds stay independent and deterministic.
    router = spec.router if isinstance(spec.router, str) else copy.deepcopy(spec.router)
    if spec.shards > 1:
        from repro.serving.shard import ShardedServingCluster

        cluster = ShardedServingCluster(
            configs, scheduler_factory, router=router, shards=spec.shards,
            speculation=spec.speculation,
        )
        return ScenarioRun(spec=spec, target=cluster, requests=requests)
    cluster = ServingCluster(configs, scheduler_factory, router=router)
    return ScenarioRun(spec=spec, target=cluster, requests=requests)
