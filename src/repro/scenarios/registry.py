"""Named scenario registry.

Maps scenario names to builder functions producing fully-resolved
:class:`~repro.scenarios.spec.ScenarioSpec` values.  Builders take the
workload ``scale`` and ``seed`` (everything scale-dependent — crowd
sizes, KV pool fractions, horizons — is derived inside the builder,
exactly as the experiment runners derive it), and callers layer
scale-independent overrides (``replicas``, ``router``, ``system``) on
top via :meth:`ScenarioSpec.with_overrides`.

Registered families:

* ``table1-<gpu>-<key>`` — the paper's Table 1 controlled setups
  (burst and Poisson cells on RTX 4090 / H200).
* ``tab02-<variant>`` — the Table 2 memory-management ablations on the
  constrained-PCIe 4090 setup.
* ``cluster-burst-4x`` — §8 scale-out: one flash crowd over four
  TokenFlow replicas behind a router.
* ``bursty-sessions`` — multi-turn conversations arriving in bursts,
  the ``session_affinity`` router's home ground.
* ``soak-steady`` / ``soak-diurnal`` — sustained-load endurance runs
  on the streaming plane: stream-native workloads (no materialised
  request list) with streaming telemetry, scale-parameterised from a
  quick smoke up to ~10⁶ requests at O(active) memory.
* ``cluster-soak-64x`` — soak-scale load across a 64-replica
  round_robin cluster; the sharded-cluster benchmark workload
  (``--shards K`` partitions the replicas across worker processes).
* ``prefix-heavy-agents`` / ``rag-replay`` — prefix-sharing traffic
  (long multi-turn agent sessions; concurrent shared-prompt replays)
  on the ``prefix_cow`` block allocator, where cross-request block
  reuse and copy-on-write forks carry the workload.

Each entry also carries a longer ``ScenarioSpec.doc`` catalogue
paragraph, rendered by ``repro list-scenarios --long`` and mirrored
into README.md.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterator, List, Tuple

from repro.gpu.hardware import get_hardware
from repro.scenarios.spec import ScenarioSpec
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler
from repro.workload.production import ProductionTraceGenerator
from repro.workload.request import Request
from repro.workload.sessions import TURN_STRIDE

# name -> (description, builder(scale, seed) -> ScenarioSpec)
_REGISTRY: Dict[str, Tuple[str, Callable[..., ScenarioSpec]]] = {}

# The Table 1 / Table 2 families derive from the experiment modules,
# which themselves import the run pipeline — registering them lazily
# (on first lookup) keeps the import graph acyclic.
_EXPERIMENT_FAMILIES_REGISTERED = False


def _ensure_registered() -> None:
    global _EXPERIMENT_FAMILIES_REGISTERED
    if not _EXPERIMENT_FAMILIES_REGISTERED:
        _EXPERIMENT_FAMILIES_REGISTERED = True
        _register_table1()
        _register_ablations()


def register_scenario(name: str, description: str):
    """Decorator: register ``fn(scale, seed) -> ScenarioSpec``."""
    def decorator(fn: Callable[..., ScenarioSpec]):
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} registered twice")
        _REGISTRY[name] = (description, fn)
        return fn
    return decorator


def get_scenario(
    name: str, scale: float = 1.0, seed: int = 0, **overrides
) -> ScenarioSpec:
    """Resolve a registered scenario at a scale/seed, with overrides.

    ``overrides`` are scale-independent spec fields (``replicas``,
    ``router``, ``system``, ``horizon`` ...) applied on top of the
    builder's output.
    """
    _ensure_registered()
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; known: {known}")
    _, builder = _REGISTRY[name]
    spec = builder(scale=scale, seed=seed)
    if overrides:
        spec = spec.with_overrides(**overrides)
    return spec


def list_scenarios() -> List[Tuple[str, str]]:
    """``(name, description)`` rows, sorted by name."""
    _ensure_registered()
    return [(name, desc) for name, (desc, _) in sorted(_REGISTRY.items())]


def scenario_names() -> List[str]:
    _ensure_registered()
    return sorted(_REGISTRY)


# --- Table 1 controlled setups ---------------------------------------------

def _register_table1() -> None:
    # Imported here (not module top) purely for import-order hygiene:
    # controlled.py pulls in the runner stack, which in turn loads the
    # build pipeline.
    from repro.experiments.controlled import TABLE1, build_workload, serving_kwargs

    def make_builder(setup, name):
        def build(scale: float = 1.0, seed: int = 0) -> ScenarioSpec:
            kwargs = serving_kwargs(setup, scale)
            return ScenarioSpec(
                name=name,
                description=setup.label(),
                doc=(
                    f"Paper Table 1 controlled setup {setup.label()}: a "
                    "fixed flash crowd on one TokenFlow instance, the "
                    "golden-pinned headline workload.  Axes: system, "
                    "fuse_decode/vectorize_decode, scale, seed."
                ),
                system="tokenflow",
                hardware=kwargs["hardware"],
                model=kwargs["model"],
                mem_frac=kwargs["mem_frac"],
                max_batch=kwargs["max_batch"],
                scale=scale,
                seed=seed,
                workload=lambda spec: build_workload(
                    setup, scale=spec.scale, seed=spec.seed
                ),
            )
        return build

    for (gpu, key), setup in sorted(TABLE1.items()):
        name = f"table1-{gpu}-{key}"
        register_scenario(name, f"Table 1 {setup.label()}")(
            make_builder(setup, name)
        )


# --- Table 2 ablations ------------------------------------------------------

def _register_ablations() -> None:
    from repro.experiments.controlled import TABLE1, build_workload, serving_kwargs
    from repro.experiments.systems import ABLATION_NAMES

    setup = TABLE1[("rtx4090", "b")]
    # The constrained host link that makes the §5.3 overlap technique
    # measurable (see experiments/ablation.py).
    pcie_gbps = 2.0

    def make_builder(variant, name):
        def build(scale: float = 1.0, seed: int = 0) -> ScenarioSpec:
            kwargs = serving_kwargs(setup, scale)
            hardware = dataclasses.replace(
                get_hardware(kwargs["hardware"]), pcie_bandwidth_gbps=pcie_gbps
            )
            return ScenarioSpec(
                name=name,
                description=f"Table 2 ablation: {variant} (PCIe {pcie_gbps} GB/s)",
                doc=(
                    f"Paper Table 2 memory-management ablation ({variant}) "
                    f"on the constrained-PCIe ({pcie_gbps} GB/s) RTX 4090 "
                    "setup, where offload/write-through/overlap each "
                    "become measurable.  Axes: scale, seed."
                ),
                system=variant,
                hardware=hardware,
                model=kwargs["model"],
                mem_frac=kwargs["mem_frac"],
                max_batch=kwargs["max_batch"],
                scale=scale,
                seed=seed,
                workload=lambda spec: build_workload(
                    setup, scale=spec.scale, seed=spec.seed
                ),
            )
        return build

    for variant in ABLATION_NAMES:
        name = f"tab02-{variant}"
        register_scenario(name, f"Table 2 memory ablation: {variant}")(
            make_builder(variant, name)
        )


# --- §8 multi-replica scale-out ---------------------------------------------

def _cluster_burst_workload(spec: ScenarioSpec) -> list:
    wl = WorkloadSpec(
        arrival="burst",
        n_requests=max(8, int(96 * spec.scale)),
        burst_spread=0.25,
        lengths=NormalLengthSampler(),
        rates=RateMixture.fixed(10.0),
    )
    return WorkloadBuilder(wl, RngStreams(spec.seed)).build()


@register_scenario(
    "cluster-burst-4x",
    "§8 scale-out: one flash crowd over 4 TokenFlow replicas",
)
def _cluster_burst(scale: float = 1.0, seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec(
        name="cluster-burst-4x",
        description="flash crowd on a 4-replica TokenFlow cluster",
        doc=(
            "§8 scale-out: one flash crowd split by a router across 4 "
            "TokenFlow replicas.  The router comparison scenario — run "
            "it with --router round_robin/least_loaded/buffer_aware, "
            "or --shards K for parallel replica simulation."
        ),
        system="tokenflow",
        hardware="h200",
        model="llama3-8b",
        mem_frac=0.02,
        max_batch=16,
        replicas=4,
        router="least_loaded",
        scale=scale,
        seed=seed,
        workload=_cluster_burst_workload,
    )


# --- bursty multi-turn sessions ---------------------------------------------

def _bursty_session_workload(spec: ScenarioSpec) -> list:
    """Conversation turns arriving in bursts.

    ``n_sessions`` conversations all start inside one flash crowd;
    each follows up with ``n_turns - 1`` further turns, spaced by the
    time a 10 tok/s reader needs to consume the previous answer plus a
    think-time gap.  Request ids use the ``TURN_STRIDE`` partitioning
    of :mod:`repro.workload.sessions` and carry ``session_id``, so
    ``session_affinity`` routing pins whole conversations to one
    replica.  Turn prompts grow with the accumulated context (earlier
    turns are re-fed as history).
    """
    n_sessions = max(4, int(24 * spec.scale))
    n_turns = 3
    rate = 10.0
    rng = RngStreams(spec.seed).stream("bursty-sessions")
    requests: list = []
    for session in range(n_sessions):
        start = float(rng.uniform(0.0, 0.5))
        prompt = int(rng.integers(96, 256))
        context = prompt
        arrival = start
        for turn in range(n_turns):
            output = int(rng.integers(96, 192))
            requests.append(
                Request(
                    req_id=session * TURN_STRIDE + turn,
                    arrival_time=arrival,
                    prompt_len=context,
                    output_len=output,
                    rate=rate,
                    session_id=session,
                )
            )
            think = float(rng.uniform(0.5, 2.0))
            arrival += output / rate + think
            # Next turn re-feeds the history plus a fresh user message.
            context += output + int(rng.integers(32, 96))
    requests.sort(key=lambda r: (r.arrival_time, r.req_id))
    return requests


@register_scenario(
    "bursty-sessions",
    "multi-turn chat sessions arriving in bursts (session_affinity demo)",
)
def _bursty_sessions(scale: float = 1.0, seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec(
        name="bursty-sessions",
        description="bursty multi-turn conversations on a 2-replica cluster",
        doc=(
            "Multi-turn chat sessions whose turns re-feed prior history, "
            "arriving in a flash crowd on a 2-replica cluster — the "
            "session_affinity router's home ground (sticky sessions keep "
            "KV locality).  Axes: router, replicas, kv_allocator."
        ),
        system="tokenflow",
        hardware="h200",
        model="llama3-8b",
        mem_frac=0.02,
        max_batch=16,
        replicas=2,
        router="session_affinity",
        scale=scale,
        seed=seed,
        workload=_bursty_session_workload,
    )


# --- streaming-plane soak scenarios ------------------------------------------
#
# Sustained-load endurance runs: requests enter through a lazy stream
# (never materialised) and leave through streaming telemetry (retired
# into accumulators at completion), so a run's memory footprint is
# O(active requests) no matter how many the scale dials up.
#
# ``scale`` multiplies the request *count*: scale=1 is 40 000 requests
# — 100x the TABLE1 h200/(a) crowd, the soak RSS benchmark's workload
# — and scale=25 reaches the million-request regime.  Load shape is
# scale-invariant (the arrival rate stays fixed; the horizon grows).

SOAK_BASE_REQUESTS = 40_000
_SOAK_ARRIVAL_RATE = 15.0       # req/s — ~70% of paced-service capacity
_SOAK_CONSUME_RATE = 20.0       # tok/s per client


def _soak_lengths() -> NormalLengthSampler:
    # Chat-style short turns: residence is dominated by paced
    # consumption (~output/rate ≈ 3.2 s), which bounds steady-state
    # concurrency near arrival_rate × residence ≈ 50 active requests.
    return NormalLengthSampler(
        prompt_mean=128.0, prompt_std=32.0,
        output_mean=64.0, output_std=16.0,
    )


def _soak_requests(scale: float) -> int:
    """The one clamp shared by the stream factories (request cap) and
    the spec builders (horizon sizing) — they must never drift apart."""
    return max(64, int(SOAK_BASE_REQUESTS * scale))


def _soak_steady_stream(spec: ScenarioSpec) -> Iterator[Request]:
    n = _soak_requests(spec.scale)
    wl = WorkloadSpec(
        arrival="poisson",
        n_requests=n,
        poisson_rate=_SOAK_ARRIVAL_RATE,
        # Enough horizon for the capped count plus slack; the cap stops
        # the stream, so over-provisioning the duration costs nothing.
        duration=n / _SOAK_ARRIVAL_RATE * 1.5 + 120.0,
        lengths=_soak_lengths(),
        rates=RateMixture.fixed(_SOAK_CONSUME_RATE),
    )
    return WorkloadBuilder(wl, RngStreams(spec.seed)).stream()


@register_scenario(
    "soak-steady",
    "streaming-plane soak: steady Poisson load, O(active) memory "
    "(scale=1 ≈ 40k requests, scale=25 ≈ 10⁶)",
)
def _soak_steady(scale: float = 1.0, seed: int = 0) -> ScenarioSpec:
    n = _soak_requests(scale)
    return ScenarioSpec(
        name="soak-steady",
        description="sustained Poisson load on the streaming plane",
        doc=(
            "Endurance run on the streaming plane: stream-native Poisson "
            "arrivals retire into sketch telemetry, so memory stays "
            "O(active requests).  scale multiplies the request count "
            "(scale=1 ≈ 40k, scale=25 ≈ 10⁶); the soak-RSS benchmark "
            "workload."
        ),
        system="tokenflow",
        hardware="h200",
        model="llama3-8b",
        mem_frac=0.05,
        max_batch=64,
        scale=scale,
        seed=seed,
        horizon=n / _SOAK_ARRIVAL_RATE * 1.5 + 10_000.0,
        workload_stream=_soak_steady_stream,
        retain_per_request=False,
    )


def _soak_diurnal_stream(spec: ScenarioSpec) -> Iterator[Request]:
    n = _soak_requests(spec.scale)
    generator = ProductionTraceGenerator(
        mean_rate=_SOAK_ARRIVAL_RATE * 0.8,
        diurnal_amplitude=0.5,
        period=1800.0,
        peak_times=(0.3, 0.8),
        peak_multiplier=1.5,
        peak_width=0.04,
    )
    wl = WorkloadSpec(
        arrival="production",
        n_requests=n,
        duration=n / generator.mean_rate * 2.0 + 120.0,
        lengths=_soak_lengths(),
        rates=RateMixture.fixed(_SOAK_CONSUME_RATE),
        production=generator,
    )
    return WorkloadBuilder(wl, RngStreams(spec.seed)).stream()


@register_scenario(
    "soak-diurnal",
    "streaming-plane soak: diurnal production-trace load with peak "
    "episodes (Fig. 11 shape), O(active) memory",
)
def _soak_diurnal(scale: float = 1.0, seed: int = 0) -> ScenarioSpec:
    n = _soak_requests(scale)
    return ScenarioSpec(
        name="soak-diurnal",
        description="diurnal production-shaped load on the streaming plane",
        doc=(
            "Day-shaped endurance run: production-trace arrivals with a "
            "diurnal envelope and peak episodes (Fig. 11 shape) on the "
            "streaming plane, O(active) memory.  The capacity-planning "
            "and future autoscaling testbed."
        ),
        system="tokenflow",
        hardware="h200",
        model="llama3-8b",
        mem_frac=0.05,
        max_batch=64,
        scale=scale,
        seed=seed,
        horizon=n / (_SOAK_ARRIVAL_RATE * 0.8) * 2.0 + 10_000.0,
        workload_stream=_soak_diurnal_stream,
        retain_per_request=False,
    )


# --- sharded-cluster soak -----------------------------------------------------
# A cluster-scale endurance run: 64 replicas behind round_robin at the
# same ~70%-capacity per-replica Poisson load as soak-steady (cluster
# arrival rate = replicas × the single-node soak rate, striped evenly).
# Stream-native with streaming telemetry, so memory stays O(active)
# per replica.  This is the shard-scaling benchmark's workload
# (benchmarks/test_shard_scaling.py runs it at --shards 1/2/4); the
# registered spec keeps shards=1 so ordinary sweeps stay single-process.
CLUSTER_SOAK_REPLICAS = 64
_CLUSTER_SOAK_BASE_REQUESTS = 6_400   # 100 requests per replica at scale=1
_CLUSTER_SOAK_RATE = _SOAK_ARRIVAL_RATE * CLUSTER_SOAK_REPLICAS


def _cluster_soak_requests(scale: float) -> int:
    return max(64, int(_CLUSTER_SOAK_BASE_REQUESTS * scale))


def _cluster_soak_stream(spec: ScenarioSpec) -> Iterator[Request]:
    n = _cluster_soak_requests(spec.scale)
    wl = WorkloadSpec(
        arrival="poisson",
        n_requests=n,
        poisson_rate=_CLUSTER_SOAK_RATE,
        duration=n / _CLUSTER_SOAK_RATE * 1.5 + 120.0,
        lengths=_soak_lengths(),
        rates=RateMixture.fixed(_SOAK_CONSUME_RATE),
    )
    return WorkloadBuilder(wl, RngStreams(spec.seed)).stream()


@register_scenario(
    "cluster-soak-64x",
    "64-replica round_robin cluster soak (scale=1 ≈ 6.4k requests); "
    "the shard-scaling benchmark workload — run with --shards K for "
    "parallel replica simulation",
)
def _cluster_soak_64x(scale: float = 1.0, seed: int = 0) -> ScenarioSpec:
    n = _cluster_soak_requests(scale)
    return ScenarioSpec(
        name="cluster-soak-64x",
        description="sharded-cluster endurance run across 64 replicas",
        doc=(
            "Cluster-scale soak: 64 TokenFlow replicas behind "
            "round_robin at ~70% per-replica capacity, stream-native "
            "with streaming telemetry.  The shard-scaling benchmark "
            "workload — run with --shards K to partition replicas "
            "across worker processes (reports stay bit-identical)."
        ),
        system="tokenflow",
        hardware="h200",
        model="llama3-8b",
        mem_frac=0.05,
        max_batch=64,
        replicas=CLUSTER_SOAK_REPLICAS,
        router="round_robin",
        scale=scale,
        seed=seed,
        horizon=n / _CLUSTER_SOAK_RATE * 1.5 + 10_000.0,
        workload_stream=_cluster_soak_stream,
        retain_per_request=False,
    )


# --- prefix-sharing scenario family -------------------------------------------
#
# Workloads where cross-request KV block reuse carries the run, paired
# with the ``prefix_cow`` allocator (the naive allocator runs them too
# — identically except for peak/total block demand — which is exactly
# the comparison BENCH_prefix.json records).


def _prefix_agent_workload(spec: ScenarioSpec) -> list:
    """Long sequential agent conversations.

    Each session runs ``n_turns`` turns back-to-back: every turn
    re-feeds the whole accumulated context plus a short fresh message,
    so by the last turn almost the entire prompt is a prefix the
    previous turn already computed.  Turns are spaced by consumption
    plus think time, so most turns start after their predecessor
    finished — the donated-chain (cached-block) reuse path, with the
    occasional overlap exercising live sharing.
    """
    n_sessions = max(4, int(16 * spec.scale))
    n_turns = 6
    rate = 10.0
    rng = RngStreams(spec.seed).stream("prefix-heavy-agents")
    requests: list = []
    for session in range(n_sessions):
        start = float(rng.uniform(0.0, 2.0))
        context = int(rng.integers(128, 384))
        arrival = start
        for turn in range(n_turns):
            output = int(rng.integers(48, 128))
            requests.append(
                Request(
                    req_id=session * TURN_STRIDE + turn,
                    arrival_time=arrival,
                    prompt_len=context,
                    output_len=output,
                    rate=rate,
                    is_agent=True,
                    session_id=session,
                )
            )
            think = float(rng.uniform(1.0, 3.0))
            arrival += output / rate + think
            context += output + int(rng.integers(16, 48))
    requests.sort(key=lambda r: (r.arrival_time, r.req_id))
    return requests


@register_scenario(
    "prefix-heavy-agents",
    "long multi-turn agent sessions on the prefix_cow allocator "
    "(every turn re-feeds its history; block reuse carries the run)",
)
def _prefix_heavy_agents(scale: float = 1.0, seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec(
        name="prefix-heavy-agents",
        description="prefix-dominated agent sessions on one instance",
        doc=(
            "16 agent sessions × 6 turns where each turn's prompt is "
            "the previous turn's full context plus a short message — "
            "the prefix_cow allocator maps the shared history onto "
            "cached blocks instead of re-allocating it (the BENCH_prefix "
            "workload; ≥30% GPU-block savings vs naive).  Axes: "
            "kv_allocator, scale, seed."
        ),
        system="tokenflow",
        hardware="h200",
        model="llama3-8b",
        mem_frac=0.02,
        max_batch=32,
        kv_allocator="prefix_cow",
        scale=scale,
        seed=seed,
        workload=_prefix_agent_workload,
    )


def _rag_replay_workload(spec: ScenarioSpec) -> list:
    """Concurrent replays of shared RAG prompts.

    ``n_groups`` retrieval corpora, each replayed by a burst of
    near-simultaneous requests that share a long ``prefix_len`` prompt
    head (the corpus + system prompt) and differ only in a short user
    question.  Because group members overlap in time, later members
    attach to the first member's *live* published chain — the
    copy-on-write fork path — rather than to a retired cache.
    """
    n_groups = max(2, int(6 * spec.scale))
    members = 8
    rate = 10.0
    rng = RngStreams(spec.seed).stream("rag-replay")
    requests: list = []
    req_id = 0
    for group in range(n_groups):
        group_start = group * 4.0
        prefix_len = int(rng.integers(256, 640))
        for _ in range(members):
            question = int(rng.integers(16, 96))
            requests.append(
                Request(
                    req_id=req_id,
                    arrival_time=group_start + float(rng.uniform(0.0, 1.5)),
                    prompt_len=prefix_len + question,
                    output_len=int(rng.integers(32, 96)),
                    rate=rate,
                    prefix_group=group,
                    prefix_len=prefix_len,
                )
            )
            req_id += 1
    requests.sort(key=lambda r: (r.arrival_time, r.req_id))
    return requests


@register_scenario(
    "rag-replay",
    "concurrent shared-prompt (RAG) replays on the prefix_cow "
    "allocator — live sharing and copy-on-write forks",
)
def _rag_replay(scale: float = 1.0, seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec(
        name="rag-replay",
        description="bursts of requests replaying shared RAG prompts",
        doc=(
            "Groups of 8 near-simultaneous requests share a 256–640 "
            "token corpus prompt (prefix_group/prefix_len) and differ "
            "only in a short question: later members attach to the "
            "first member's live published chain, so this family "
            "exercises concurrent sharing and CoW forks, not just "
            "retired-cache reuse.  Axes: kv_allocator, scale, seed."
        ),
        system="tokenflow",
        hardware="h200",
        model="llama3-8b",
        mem_frac=0.02,
        max_batch=32,
        kv_allocator="prefix_cow",
        scale=scale,
        seed=seed,
        workload=_rag_replay_workload,
    )
