"""Named scenario registry.

Maps scenario names to builder functions producing fully-resolved
:class:`~repro.scenarios.spec.ScenarioSpec` values.  Builders take the
workload ``scale`` and ``seed`` (everything scale-dependent — crowd
sizes, KV pool fractions, horizons — is derived inside the builder,
exactly as the experiment runners derive it), and callers layer
scale-independent overrides (``replicas``, ``router``, ``system``) on
top via :meth:`ScenarioSpec.with_overrides`.

Registered families:

* ``table1-<gpu>-<key>`` — the paper's Table 1 controlled setups
  (burst and Poisson cells on RTX 4090 / H200).
* ``tab02-<variant>`` — the Table 2 memory-management ablations on the
  constrained-PCIe 4090 setup.
* ``cluster-burst-4x`` — §8 scale-out: one flash crowd over four
  TokenFlow replicas behind a router.
* ``bursty-sessions`` — multi-turn conversations arriving in bursts,
  the ``session_affinity`` router's home ground.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Tuple

from repro.gpu.hardware import get_hardware
from repro.scenarios.spec import ScenarioSpec
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler
from repro.workload.request import Request
from repro.workload.sessions import TURN_STRIDE

# name -> (description, builder(scale, seed) -> ScenarioSpec)
_REGISTRY: Dict[str, Tuple[str, Callable[..., ScenarioSpec]]] = {}

# The Table 1 / Table 2 families derive from the experiment modules,
# which themselves import the run pipeline — registering them lazily
# (on first lookup) keeps the import graph acyclic.
_EXPERIMENT_FAMILIES_REGISTERED = False


def _ensure_registered() -> None:
    global _EXPERIMENT_FAMILIES_REGISTERED
    if not _EXPERIMENT_FAMILIES_REGISTERED:
        _EXPERIMENT_FAMILIES_REGISTERED = True
        _register_table1()
        _register_ablations()


def register_scenario(name: str, description: str):
    """Decorator: register ``fn(scale, seed) -> ScenarioSpec``."""
    def decorator(fn: Callable[..., ScenarioSpec]):
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} registered twice")
        _REGISTRY[name] = (description, fn)
        return fn
    return decorator


def get_scenario(
    name: str, scale: float = 1.0, seed: int = 0, **overrides
) -> ScenarioSpec:
    """Resolve a registered scenario at a scale/seed, with overrides.

    ``overrides`` are scale-independent spec fields (``replicas``,
    ``router``, ``system``, ``horizon`` ...) applied on top of the
    builder's output.
    """
    _ensure_registered()
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; known: {known}")
    _, builder = _REGISTRY[name]
    spec = builder(scale=scale, seed=seed)
    if overrides:
        spec = spec.with_overrides(**overrides)
    return spec


def list_scenarios() -> List[Tuple[str, str]]:
    """``(name, description)`` rows, sorted by name."""
    _ensure_registered()
    return [(name, desc) for name, (desc, _) in sorted(_REGISTRY.items())]


def scenario_names() -> List[str]:
    _ensure_registered()
    return sorted(_REGISTRY)


# --- Table 1 controlled setups ---------------------------------------------

def _register_table1() -> None:
    # Imported here (not module top) purely for import-order hygiene:
    # controlled.py pulls in the runner stack, which in turn loads the
    # build pipeline.
    from repro.experiments.controlled import TABLE1, build_workload, serving_kwargs

    def make_builder(setup, name):
        def build(scale: float = 1.0, seed: int = 0) -> ScenarioSpec:
            kwargs = serving_kwargs(setup, scale)
            return ScenarioSpec(
                name=name,
                description=setup.label(),
                system="tokenflow",
                hardware=kwargs["hardware"],
                model=kwargs["model"],
                mem_frac=kwargs["mem_frac"],
                max_batch=kwargs["max_batch"],
                scale=scale,
                seed=seed,
                workload=lambda spec: build_workload(
                    setup, scale=spec.scale, seed=spec.seed
                ),
            )
        return build

    for (gpu, key), setup in sorted(TABLE1.items()):
        name = f"table1-{gpu}-{key}"
        register_scenario(name, f"Table 1 {setup.label()}")(
            make_builder(setup, name)
        )


# --- Table 2 ablations ------------------------------------------------------

def _register_ablations() -> None:
    from repro.experiments.controlled import TABLE1, build_workload, serving_kwargs
    from repro.experiments.systems import ABLATION_NAMES

    setup = TABLE1[("rtx4090", "b")]
    # The constrained host link that makes the §5.3 overlap technique
    # measurable (see experiments/ablation.py).
    pcie_gbps = 2.0

    def make_builder(variant, name):
        def build(scale: float = 1.0, seed: int = 0) -> ScenarioSpec:
            kwargs = serving_kwargs(setup, scale)
            hardware = dataclasses.replace(
                get_hardware(kwargs["hardware"]), pcie_bandwidth_gbps=pcie_gbps
            )
            return ScenarioSpec(
                name=name,
                description=f"Table 2 ablation: {variant} (PCIe {pcie_gbps} GB/s)",
                system=variant,
                hardware=hardware,
                model=kwargs["model"],
                mem_frac=kwargs["mem_frac"],
                max_batch=kwargs["max_batch"],
                scale=scale,
                seed=seed,
                workload=lambda spec: build_workload(
                    setup, scale=spec.scale, seed=spec.seed
                ),
            )
        return build

    for variant in ABLATION_NAMES:
        name = f"tab02-{variant}"
        register_scenario(name, f"Table 2 memory ablation: {variant}")(
            make_builder(variant, name)
        )


# --- §8 multi-replica scale-out ---------------------------------------------

def _cluster_burst_workload(spec: ScenarioSpec) -> list:
    wl = WorkloadSpec(
        arrival="burst",
        n_requests=max(8, int(96 * spec.scale)),
        burst_spread=0.25,
        lengths=NormalLengthSampler(),
        rates=RateMixture.fixed(10.0),
    )
    return WorkloadBuilder(wl, RngStreams(spec.seed)).build()


@register_scenario(
    "cluster-burst-4x",
    "§8 scale-out: one flash crowd over 4 TokenFlow replicas",
)
def _cluster_burst(scale: float = 1.0, seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec(
        name="cluster-burst-4x",
        description="flash crowd on a 4-replica TokenFlow cluster",
        system="tokenflow",
        hardware="h200",
        model="llama3-8b",
        mem_frac=0.02,
        max_batch=16,
        replicas=4,
        router="least_loaded",
        scale=scale,
        seed=seed,
        workload=_cluster_burst_workload,
    )


# --- bursty multi-turn sessions ---------------------------------------------

def _bursty_session_workload(spec: ScenarioSpec) -> list:
    """Conversation turns arriving in bursts.

    ``n_sessions`` conversations all start inside one flash crowd;
    each follows up with ``n_turns - 1`` further turns, spaced by the
    time a 10 tok/s reader needs to consume the previous answer plus a
    think-time gap.  Request ids use the ``TURN_STRIDE`` partitioning
    of :mod:`repro.workload.sessions` and carry ``session_id``, so
    ``session_affinity`` routing pins whole conversations to one
    replica.  Turn prompts grow with the accumulated context (earlier
    turns are re-fed as history).
    """
    n_sessions = max(4, int(24 * spec.scale))
    n_turns = 3
    rate = 10.0
    rng = RngStreams(spec.seed).stream("bursty-sessions")
    requests: list = []
    for session in range(n_sessions):
        start = float(rng.uniform(0.0, 0.5))
        prompt = int(rng.integers(96, 256))
        context = prompt
        arrival = start
        for turn in range(n_turns):
            output = int(rng.integers(96, 192))
            requests.append(
                Request(
                    req_id=session * TURN_STRIDE + turn,
                    arrival_time=arrival,
                    prompt_len=context,
                    output_len=output,
                    rate=rate,
                    session_id=session,
                )
            )
            think = float(rng.uniform(0.5, 2.0))
            arrival += output / rate + think
            # Next turn re-feeds the history plus a fresh user message.
            context += output + int(rng.integers(32, 96))
    requests.sort(key=lambda r: (r.arrival_time, r.req_id))
    return requests


@register_scenario(
    "bursty-sessions",
    "multi-turn chat sessions arriving in bursts (session_affinity demo)",
)
def _bursty_sessions(scale: float = 1.0, seed: int = 0) -> ScenarioSpec:
    return ScenarioSpec(
        name="bursty-sessions",
        description="bursty multi-turn conversations on a 2-replica cluster",
        system="tokenflow",
        hardware="h200",
        model="llama3-8b",
        mem_frac=0.02,
        max_batch=16,
        replicas=2,
        router="session_affinity",
        scale=scale,
        seed=seed,
        workload=_bursty_session_workload,
    )
