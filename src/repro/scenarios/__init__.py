"""Scenario-driven serving runs.

One declarative :class:`~repro.scenarios.spec.ScenarioSpec` names a
complete serving run — workload, hardware, scheduler/system, router,
replicas, seed — and :func:`~repro.scenarios.build.build_run` turns it
into a ready :class:`~repro.scenarios.build.ScenarioRun`.  The
registry (:mod:`repro.scenarios.registry`) covers the paper's Table 1
and Table 2 setups plus multi-replica, bursty-session, and
streaming-plane soak extensions; ``repro run <scenario>`` and
``repro list-scenarios`` expose it on the command line.
"""

from repro.scenarios.build import ScenarioRun, build_run, run_matrix
from repro.scenarios.registry import (
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "ScenarioRun",
    "ScenarioSpec",
    "build_run",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_matrix",
    "scenario_names",
]
