"""Request object and lifecycle state machine.

A request carries its workload parameters (prompt length, output
length, required consumption rate) plus the runtime state the serving
system mutates as the request moves through

    QUEUED -> PREFILLING -> RUNNING -> FINISHED
                 ^              |
                 |              v
              (recompute)   PREEMPTED -> LOADING -> RUNNING

Transitions are validated so scheduler bugs surface as exceptions
instead of silent metric corruption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class RequestState(enum.Enum):
    """Lifecycle states of a request inside the serving system."""

    QUEUED = "queued"          # arrived, waiting for admission
    PREFILLING = "prefilling"  # admitted, waiting for / running prefill
    RUNNING = "running"        # in the decode batch
    PREEMPTED = "preempted"    # KV offloaded (or dropped), not decoding
    LOADING = "loading"        # KV transfer from CPU in flight
    FINISHED = "finished"      # all output tokens generated
    CANCELLED = "cancelled"    # client disconnected / aborted


# Legal state transitions; see the module docstring diagram.  A live
# request can be cancelled from any non-terminal state (client
# disconnects happen whenever).
_ALLOWED_TRANSITIONS: dict[RequestState, frozenset[RequestState]] = {
    RequestState.QUEUED: frozenset({RequestState.PREFILLING, RequestState.CANCELLED}),
    RequestState.PREFILLING: frozenset(
        {RequestState.RUNNING, RequestState.QUEUED, RequestState.CANCELLED}
    ),
    RequestState.RUNNING: frozenset(
        {RequestState.PREEMPTED, RequestState.FINISHED, RequestState.CANCELLED}
    ),
    RequestState.PREEMPTED: frozenset(
        {RequestState.LOADING, RequestState.PREFILLING, RequestState.CANCELLED}
    ),
    RequestState.LOADING: frozenset(
        {RequestState.RUNNING, RequestState.PREEMPTED, RequestState.CANCELLED}
    ),
    RequestState.FINISHED: frozenset(),
    RequestState.CANCELLED: frozenset(),
}


class InvalidTransition(RuntimeError):
    """Raised on a request state transition the lifecycle forbids."""


@dataclass(eq=False)
class Request:
    """One streaming request.

    Workload attributes are immutable after construction; runtime
    attributes are mutated by the serving system.

    Identity semantics (``eq=False``): req_ids are unique within a run
    and queue membership always means "this very object", so list
    ``remove``/``in`` on the serving queues compare by identity instead
    of field-by-field dataclass equality (which would walk the
    ever-growing ``token_times`` list on every scan).

    Attributes:
        req_id: unique id within a run.
        arrival_time: simulation time of arrival (seconds).
        prompt_len: prompt tokens to prefill.
        output_len: output tokens to generate.
        rate: required consumption rate, tokens/second.  For non-user
            consumers this is a *reference rate* used purely as a
            scheduling priority signal (paper §8).
        is_agent: True for non-user consumers (reference-rate clients).
        session_id: conversation this request is a turn of (None for
            standalone requests).  Session-aware routing keys on it,
            and the prefix-sharing allocator treats the session as a
            block namespace (each turn re-feeds the previous context
            verbatim, so prefixes align by construction).
        prefix_group: id of a shared-prompt group (e.g. requests
            replaying one RAG corpus / system prompt); ``prefix_len``
            leading tokens are common to the group.  None for requests
            with no cross-request prompt sharing.
        prefix_len: length of the shared prompt prefix when
            ``prefix_group`` is set (0 otherwise).
    """

    req_id: int
    arrival_time: float
    prompt_len: int
    output_len: int
    rate: float
    is_agent: bool = False
    session_id: Optional[int] = None
    prefix_group: Optional[int] = None
    prefix_len: int = 0

    # --- runtime state -------------------------------------------------
    state: RequestState = field(default=RequestState.QUEUED)
    generated: int = 0                      # output tokens produced so far
    ttft: Optional[float] = None            # first-token latency (seconds)
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    token_times: list = field(default_factory=list)  # per-token gen timestamps
    preemption_count: int = 0
    admitted_time: Optional[float] = None
    prefill_progress: int = 0               # tokens prefilled this pass

    def __post_init__(self) -> None:
        if self.prompt_len <= 0:
            raise ValueError(f"prompt_len must be positive, got {self.prompt_len}")
        if self.output_len <= 0:
            raise ValueError(f"output_len must be positive, got {self.output_len}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.arrival_time < 0:
            raise ValueError(f"arrival_time must be non-negative, got {self.arrival_time}")
        if self.prefix_len < 0:
            raise ValueError(f"prefix_len must be non-negative, got {self.prefix_len}")
        if self.prefix_group is not None and self.prefix_len <= 0:
            raise ValueError("prefix_group requires a positive prefix_len")
        if self.prefix_group is not None and self.prefix_len > self.prompt_len:
            raise ValueError(
                f"prefix_len {self.prefix_len} exceeds prompt_len {self.prompt_len}"
            )

    # --- derived quantities --------------------------------------------
    @property
    def context_len(self) -> int:
        """Prompt plus generated tokens — the KV-cache footprint."""
        return self.prompt_len + self.generated

    @property
    def remaining_output(self) -> int:
        """Output tokens still to generate."""
        return self.output_len - self.generated

    @property
    def is_finished(self) -> bool:
        return self.state is RequestState.FINISHED

    @property
    def affinity_key(self) -> Optional[int]:
        """Routing key for session-sticky policies (None = stateless).

        The typed accessor session-affinity routing and prefix lookups
        share: wherever a component asks "which conversation does this
        request belong to", it goes through here.
        """
        return self.session_id

    def sharing_identity(self) -> Optional[tuple]:
        """Prefix-sharing namespace, or None if nothing is shareable.

        Returns ``((kind, id), limit)`` where ``limit`` bounds the
        shareable token span (None = the whole context, for session
        turns that re-feed prior history verbatim; ``prefix_len`` for
        shared-prompt groups).  The simulator has no token content, so
        block "content hashes" are modelled as ``(namespace, index)``
        positions within this namespace — see
        :mod:`repro.memory.blocktable`.
        """
        if self.session_id is not None:
            return (("sess", self.session_id), None)
        if self.prefix_group is not None:
            return (("grp", self.prefix_group), self.prefix_len)
        return None

    # --- lifecycle ------------------------------------------------------
    def transition(self, new_state: RequestState) -> None:
        """Move to ``new_state``, validating against the lifecycle."""
        if new_state not in _ALLOWED_TRANSITIONS[self.state]:
            raise InvalidTransition(
                f"request {self.req_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    def record_token(self, timestamp: float) -> None:
        """Record generation of one output token at ``timestamp``."""
        if self.generated >= self.output_len:
            raise RuntimeError(
                f"request {self.req_id} already generated all {self.output_len} tokens"
            )
        if self.token_times and timestamp < self.token_times[-1]:
            raise ValueError("token timestamps must be non-decreasing")
        if self.ttft is None:
            self.ttft = timestamp - self.arrival_time
            self.first_token_time = timestamp
        self.generated += 1
        self.token_times.append(timestamp)

    def inter_token_latencies(self) -> list:
        """The δ_{i,1..L-1} sequence from the paper's QoS definition."""
        return [
            self.token_times[j + 1] - self.token_times[j]
            for j in range(len(self.token_times) - 1)
        ]

    def __repr__(self) -> str:
        return (
            f"Request(id={self.req_id}, state={self.state.value}, "
            f"prompt={self.prompt_len}, out={self.generated}/{self.output_len}, "
            f"rate={self.rate})"
        )


def clone_requests(requests) -> list:
    """Fresh copies of the workload attributes of ``requests``.

    Every comparison runs each system on the *same* workload; cloning
    gives each run pristine request objects (runtime state is
    per-system).
    """
    return [
        Request(
            req_id=r.req_id,
            arrival_time=r.arrival_time,
            prompt_len=r.prompt_len,
            output_len=r.output_len,
            rate=r.rate,
            is_agent=r.is_agent,
            session_id=r.session_id,
            prefix_group=r.prefix_group,
            prefix_len=r.prefix_len,
        )
        for r in requests
    ]
