"""Arrival processes used by the evaluation.

Each process exists in two spellings that produce the *same* timestamp
sequence from the same RNG:

* ``*_arrivals`` — the list factories: sorted arrival timestamps as an
  array (thin :func:`materialize <repro.workload.stream.materialize>`
  wrappers over the streams below).
* ``*_arrival_stream`` — lazy generators yielding one timestamp at a
  time, the workload plane's O(active)-memory entry point.  Gap draws
  happen in bounded chunks (``_GAP_CHUNK``), so a rate×duration product
  in the millions never materialises a proportional gap array; numpy
  ``Generator`` draws are sequence-stable across chunk splits, so the
  chunking never changes the produced timestamps.

Everything is pure given an RNG, so workloads are reproducible from
the root seed.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

# Upper bound on gaps drawn per batch.  Small workloads draw exactly
# the batches the pre-stream implementation drew (same RNG consumption,
# so downstream draws from a shared generator — e.g. BurstGPT's burst
# windows — are unchanged); huge rate×duration workloads are capped so
# allocation stays bounded.
_GAP_CHUNK = 65536


def burst_arrivals(
    burst_size: int,
    start: float = 0.0,
    spread: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """A flash crowd: ``burst_size`` requests at (or jittered around) ``start``.

    Args:
        burst_size: number of requests in the burst.
        start: burst epoch.
        spread: if positive, arrivals are uniformly jittered over
            ``[start, start + spread]`` — real "simultaneous" bursts
            still arrive over some milliseconds.
        rng: required when ``spread > 0``.
    """
    if burst_size <= 0:
        raise ValueError(f"burst_size must be positive, got {burst_size}")
    if spread < 0:
        raise ValueError(f"spread must be non-negative, got {spread}")
    if spread == 0:
        return np.full(burst_size, float(start))
    if rng is None:
        raise ValueError("rng is required when spread > 0")
    times = start + rng.uniform(0.0, spread, size=burst_size)
    return np.sort(times)


def burst_arrival_stream(
    burst_size: int,
    start: float = 0.0,
    spread: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[float]:
    """Streaming spelling of :func:`burst_arrivals`.

    A flash crowd is a bounded, simultaneous batch — jittered arrivals
    must be sorted before the first one can be yielded — so this
    materialises the burst and yields from it (burst sizes are the
    request count itself, never the unbounded rate×duration product
    the rate-driven streams exist to avoid).
    """
    yield from burst_arrivals(burst_size, start=start, spread=spread, rng=rng)


def poisson_arrivals(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    start: float = 0.0,
) -> np.ndarray:
    """Poisson process with ``rate`` requests/s over ``duration`` seconds."""
    return np.asarray(list(poisson_arrival_stream(rate, duration, rng, start)))


def poisson_arrival_stream(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    start: float = 0.0,
) -> Iterator[float]:
    """Poisson arrivals yielded one at a time.

    Inter-arrival gaps are drawn in batches of at most ``_GAP_CHUNK``
    — the historical batch size (``rate·duration·1.5 + 16``) when that
    is smaller, so existing workloads consume the RNG identically,
    while huge rate×duration products no longer allocate a
    proportional gap array up front.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    chunk = min(int(rate * duration * 1.5) + 16, _GAP_CHUNK)
    end = start + duration
    t = start
    while True:
        gaps = rng.exponential(1.0 / rate, size=chunk)
        for gap in gaps:
            t += gap
            if t >= end:
                return
            yield t


def gamma_arrivals(
    rate: float,
    cv: float,
    duration: float,
    rng: np.random.Generator,
    start: float = 0.0,
) -> np.ndarray:
    """Gamma-renewal arrivals with coefficient of variation ``cv``.

    ``cv > 1`` yields burstier-than-Poisson traffic — the regime
    BurstGPT documents for production LLM services.
    """
    return np.asarray(list(gamma_arrival_stream(rate, cv, duration, rng, start)))


def gamma_arrival_stream(
    rate: float,
    cv: float,
    duration: float,
    rng: np.random.Generator,
    start: float = 0.0,
) -> Iterator[float]:
    """Gamma-renewal arrivals yielded one at a time (one draw per gap,
    exactly the draw sequence of the historical list factory)."""
    if rate <= 0 or cv <= 0 or duration <= 0:
        raise ValueError("rate, cv and duration must all be positive")
    shape = 1.0 / (cv * cv)
    scale = 1.0 / (rate * shape)
    end = start + duration
    t = start
    while t < end:
        t += rng.gamma(shape, scale)
        if t < end:
            yield t


def staggered_burst_arrivals(
    burst_size: int,
    n_bursts: int,
    interval: float,
    rng: np.random.Generator,
    spread: float = 0.5,
    start: float = 0.0,
) -> np.ndarray:
    """Repeated flash crowds: ``n_bursts`` bursts spaced ``interval`` apart."""
    if n_bursts <= 0:
        raise ValueError(f"n_bursts must be positive, got {n_bursts}")
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    chunks = [
        burst_arrivals(burst_size, start=start + k * interval, spread=spread, rng=rng)
        for k in range(n_bursts)
    ]
    return np.sort(np.concatenate(chunks))
