"""Arrival processes used by the evaluation.

Functions return sorted arrival timestamps (seconds).  They are pure
given an RNG, so workloads are reproducible from the root seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def burst_arrivals(
    burst_size: int,
    start: float = 0.0,
    spread: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """A flash crowd: ``burst_size`` requests at (or jittered around) ``start``.

    Args:
        burst_size: number of requests in the burst.
        start: burst epoch.
        spread: if positive, arrivals are uniformly jittered over
            ``[start, start + spread]`` — real "simultaneous" bursts
            still arrive over some milliseconds.
        rng: required when ``spread > 0``.
    """
    if burst_size <= 0:
        raise ValueError(f"burst_size must be positive, got {burst_size}")
    if spread < 0:
        raise ValueError(f"spread must be non-negative, got {spread}")
    if spread == 0:
        return np.full(burst_size, float(start))
    if rng is None:
        raise ValueError("rng is required when spread > 0")
    times = start + rng.uniform(0.0, spread, size=burst_size)
    return np.sort(times)


def poisson_arrivals(
    rate: float,
    duration: float,
    rng: np.random.Generator,
    start: float = 0.0,
) -> np.ndarray:
    """Poisson process with ``rate`` requests/s over ``duration`` seconds."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    # Draw inter-arrival gaps until we pass the horizon.
    expected = int(rate * duration * 1.5) + 16
    times: list[float] = []
    t = start
    while True:
        gaps = rng.exponential(1.0 / rate, size=expected)
        for gap in gaps:
            t += gap
            if t >= start + duration:
                return np.asarray(times)
            times.append(t)


def gamma_arrivals(
    rate: float,
    cv: float,
    duration: float,
    rng: np.random.Generator,
    start: float = 0.0,
) -> np.ndarray:
    """Gamma-renewal arrivals with coefficient of variation ``cv``.

    ``cv > 1`` yields burstier-than-Poisson traffic — the regime
    BurstGPT documents for production LLM services.
    """
    if rate <= 0 or cv <= 0 or duration <= 0:
        raise ValueError("rate, cv and duration must all be positive")
    shape = 1.0 / (cv * cv)
    scale = 1.0 / (rate * shape)
    times: list[float] = []
    t = start
    while t < start + duration:
        t += rng.gamma(shape, scale)
        if t < start + duration:
            times.append(t)
    return np.asarray(times)


def staggered_burst_arrivals(
    burst_size: int,
    n_bursts: int,
    interval: float,
    rng: np.random.Generator,
    spread: float = 0.5,
    start: float = 0.0,
) -> np.ndarray:
    """Repeated flash crowds: ``n_bursts`` bursts spaced ``interval`` apart."""
    if n_bursts <= 0:
        raise ValueError(f"n_bursts must be positive, got {n_bursts}")
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    chunks = [
        burst_arrivals(burst_size, start=start + k * interval, spread=spread, rng=rng)
        for k in range(n_bursts)
    ]
    return np.sort(np.concatenate(chunks))
