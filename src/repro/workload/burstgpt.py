"""BurstGPT-like trace synthesizer.

BurstGPT (Wang et al., 2024) characterises real GPT service traffic as
a baseline request stream punctuated by burst episodes during which the
arrival rate multiplies.  We have no network access to the released
trace, so we synthesize arrivals with the same published structure:
gamma-renewal baseline traffic (CV > 1) overlaid with Poisson-placed
burst episodes of elevated rate.  The scheduler comparison only needs
this burst structure, not the exact trace bytes (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.arrivals import gamma_arrivals, poisson_arrivals


@dataclass(frozen=True)
class BurstGPTTraceGenerator:
    """Synthesizes BurstGPT-shaped arrival timestamps.

    Attributes:
        base_rate: baseline arrival rate (req/s).
        base_cv: coefficient of variation of baseline inter-arrivals.
        burst_rate_multiplier: arrival-rate multiplier inside bursts.
        burst_duration: mean burst episode length (s).
        burst_frequency: burst episodes per second (Poisson).
    """

    base_rate: float = 1.0
    base_cv: float = 2.0
    burst_rate_multiplier: float = 8.0
    burst_duration: float = 10.0
    burst_frequency: float = 1.0 / 60.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if self.burst_rate_multiplier < 1:
            raise ValueError("burst_rate_multiplier must be >= 1")
        if self.burst_duration <= 0 or self.burst_frequency < 0:
            raise ValueError("burst_duration must be positive, burst_frequency >= 0")

    def burst_windows(self, duration: float, rng: np.random.Generator) -> list:
        """Sample the (start, end) windows of burst episodes."""
        windows: list[tuple] = []
        if self.burst_frequency == 0:
            return windows
        t = 0.0
        while True:
            t += rng.exponential(1.0 / self.burst_frequency)
            if t >= duration:
                return windows
            length = rng.exponential(self.burst_duration)
            windows.append((t, min(duration, t + length)))

    def generate(self, duration: float, rng: np.random.Generator) -> np.ndarray:
        """Return sorted arrival timestamps over ``[0, duration)``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        base = gamma_arrivals(self.base_rate, self.base_cv, duration, rng)
        extra_rate = self.base_rate * (self.burst_rate_multiplier - 1.0)
        extras: list[np.ndarray] = []
        for start, end in self.burst_windows(duration, rng):
            if end - start <= 0 or extra_rate <= 0:
                continue
            extras.append(poisson_arrivals(extra_rate, end - start, rng, start=start))
        if extras:
            return np.sort(np.concatenate([base] + extras))
        return base
