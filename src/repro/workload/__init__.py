"""Request model and workload generation.

Provides the :class:`~repro.workload.request.Request` lifecycle object
plus generators for every arrival pattern used in the paper's
evaluation: bursty flash crowds, Poisson traffic, BurstGPT-like traces
with burst episodes, and a production-trace synthesizer matching the
shape of the paper's Figure 11.
"""

from repro.workload.request import Request, RequestState
from repro.workload.lengths import LengthSampler, NormalLengthSampler, LogNormalLengthSampler
from repro.workload.arrivals import (
    burst_arrivals,
    poisson_arrivals,
    gamma_arrivals,
    staggered_burst_arrivals,
)
from repro.workload.burstgpt import BurstGPTTraceGenerator
from repro.workload.production import ProductionTraceGenerator
from repro.workload.builder import WorkloadBuilder, WorkloadSpec

__all__ = [
    "Request",
    "RequestState",
    "LengthSampler",
    "NormalLengthSampler",
    "LogNormalLengthSampler",
    "burst_arrivals",
    "poisson_arrivals",
    "gamma_arrivals",
    "staggered_burst_arrivals",
    "BurstGPTTraceGenerator",
    "ProductionTraceGenerator",
    "WorkloadBuilder",
    "WorkloadSpec",
]
