"""Request model and workload generation.

Provides the :class:`~repro.workload.request.Request` lifecycle object
plus generators for every arrival pattern used in the paper's
evaluation: bursty flash crowds, Poisson traffic, BurstGPT-like traces
with burst episodes, and a production-trace synthesizer matching the
shape of the paper's Figure 11.  Every pattern has a streaming
spelling (``*_arrival_stream`` / :meth:`WorkloadBuilder.stream`) that
yields the identical sequence lazily — the entry point of the
streaming workload plane (see :mod:`repro.workload.stream`).
"""

from repro.workload.request import Request, RequestState
from repro.workload.lengths import LengthSampler, NormalLengthSampler, LogNormalLengthSampler
from repro.workload.arrivals import (
    burst_arrival_stream,
    burst_arrivals,
    gamma_arrival_stream,
    gamma_arrivals,
    poisson_arrival_stream,
    poisson_arrivals,
    staggered_burst_arrivals,
)
from repro.workload.burstgpt import BurstGPTTraceGenerator
from repro.workload.production import ProductionTraceGenerator
from repro.workload.builder import WorkloadBuilder, WorkloadSpec
from repro.workload.stream import materialize, ordered, stream_workload

__all__ = [
    "Request",
    "RequestState",
    "LengthSampler",
    "NormalLengthSampler",
    "LogNormalLengthSampler",
    "burst_arrivals",
    "burst_arrival_stream",
    "poisson_arrivals",
    "poisson_arrival_stream",
    "gamma_arrivals",
    "gamma_arrival_stream",
    "staggered_burst_arrivals",
    "BurstGPTTraceGenerator",
    "ProductionTraceGenerator",
    "WorkloadBuilder",
    "WorkloadSpec",
    "materialize",
    "ordered",
    "stream_workload",
]
