"""Workload assembly: arrivals + lengths + rates -> Request list/stream.

A :class:`WorkloadSpec` pins down everything random about a workload;
:class:`WorkloadBuilder` turns it into concrete ``Request`` objects
using named RNG streams, so the same spec + seed always yields the
same workload regardless of which experiment consumes it.

Two spellings share one sampling path: :meth:`WorkloadBuilder.stream`
yields requests lazily in arrival order (the streaming workload
plane's entry point — O(1) memory however many requests the spec
describes), and :meth:`WorkloadBuilder.build` is its
:func:`~repro.workload.stream.materialize` wrapper returning the
classic list.  Both produce identical requests: every sampler owns an
independent named RNG stream, so per-request interleaving of the
draws equals the historical batch order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.sim.rng import RngStreams
from repro.workload.arrivals import (
    burst_arrival_stream,
    poisson_arrival_stream,
)
from repro.workload.burstgpt import BurstGPTTraceGenerator
from repro.workload.lengths import LengthSampler, NormalLengthSampler
from repro.workload.production import ProductionTraceGenerator
from repro.workload.request import Request


@dataclass(frozen=True)
class RateMixture:
    """A categorical mixture of consumption rates.

    ``rates`` and ``weights`` must have equal length; weights are
    normalised.  A single-entry mixture is a fixed rate.
    """

    rates: Sequence[float]
    weights: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.rates) != len(self.weights):
            raise ValueError("rates and weights must have equal length")
        if not self.rates:
            raise ValueError("mixture must have at least one component")
        if any(r <= 0 for r in self.rates):
            raise ValueError("all rates must be positive")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative and sum > 0")

    def sample(self, rng: np.random.Generator) -> float:
        weights = np.asarray(self.weights, dtype=float)
        weights = weights / weights.sum()
        idx = rng.choice(len(self.rates), p=weights)
        return float(self.rates[idx])

    @classmethod
    def fixed(cls, rate: float) -> "RateMixture":
        return cls(rates=(rate,), weights=(1.0,))

    @classmethod
    def from_population(
        cls,
        mode: str = "reading",
        languages: Optional[Sequence] = None,
        speed_multiplier: float = 1.0,
    ) -> "RateMixture":
        """Uniform mixture over the paper's Fig. 1 consumption rates.

        Builds a rate mixture from the reading/listening speed tables
        (age groups x languages), optionally restricted to some
        languages.  ``speed_multiplier`` scales every rate — the paper
        serves at ~2x reading speed as a responsiveness margin.
        """
        from repro.client.rates import rate_table_rows

        if speed_multiplier <= 0:
            raise ValueError("speed_multiplier must be positive")
        wanted = None if languages is None else {l.lower() for l in languages}
        rows = [
            (language, rate)
            for language, _age, rate in rate_table_rows(mode)
            if wanted is None or language in wanted
        ]
        if not rows:
            raise ValueError("no population cells match the given languages")
        rates = tuple(rate * speed_multiplier for _, rate in rows)
        weights = tuple(1.0 for _ in rows)
        return cls(rates=rates, weights=weights)


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a workload.

    Attributes:
        arrival: one of "burst", "poisson", "burstgpt", "production".
        n_requests: request count for "burst"; for rate-driven
            processes it caps the generated count (None = no cap).
        duration: horizon for rate-driven arrival processes.
        poisson_rate: λ for "poisson".
        burst_spread: jitter window for "burst".
        lengths: length sampler.
        rates: consumption-rate mixture.
        burstgpt: generator parameters for "burstgpt".
        production: generator parameters for "production".
    """

    arrival: str = "burst"
    n_requests: Optional[int] = 64
    duration: float = 60.0
    poisson_rate: float = 2.0
    burst_spread: float = 0.25
    lengths: LengthSampler = field(default_factory=NormalLengthSampler)
    rates: RateMixture = field(default_factory=lambda: RateMixture.fixed(10.0))
    burstgpt: BurstGPTTraceGenerator = field(default_factory=BurstGPTTraceGenerator)
    production: ProductionTraceGenerator = field(default_factory=ProductionTraceGenerator)

    def __post_init__(self) -> None:
        if self.arrival not in ("burst", "poisson", "burstgpt", "production"):
            raise ValueError(f"unknown arrival kind {self.arrival!r}")
        if self.arrival == "burst" and (self.n_requests is None or self.n_requests <= 0):
            raise ValueError("burst workloads need a positive n_requests")


class WorkloadBuilder:
    """Turns a :class:`WorkloadSpec` into ``Request`` objects — lazily
    (:meth:`stream`) or as the classic materialised list (:meth:`build`)."""

    def __init__(self, spec: WorkloadSpec, rng_streams: RngStreams) -> None:
        self.spec = spec
        self._rng = rng_streams

    def _arrival_stream(self) -> Iterator[float]:
        """Arrival timestamps, lazily, in non-decreasing order.

        Rate-driven processes (poisson, production) stream natively —
        bounded gap-chunk draws, O(1) live timestamps.  Flash crowds
        are bounded by construction, and the BurstGPT synthesizer must
        sort baseline + burst overlays before the first arrival is
        known, so both yield from their materialised arrays.
        """
        spec = self.spec
        rng = self._rng.stream("arrivals")
        if spec.arrival == "burst":
            assert spec.n_requests is not None
            return burst_arrival_stream(
                spec.n_requests, spread=spec.burst_spread,
                rng=rng if spec.burst_spread > 0 else None,
            )
        if spec.arrival == "poisson":
            return poisson_arrival_stream(spec.poisson_rate, spec.duration, rng)
        if spec.arrival == "burstgpt":
            return iter(spec.burstgpt.generate(spec.duration, rng))
        return spec.production.generate_stream(spec.duration, rng)

    def stream(self) -> Iterator[Request]:
        """Yield the workload's requests lazily, in arrival order.

        Identical to iterating :meth:`build`'s list: the per-request
        length/rate draws come from their own named streams, so
        sampling them as each arrival is popped (instead of after the
        whole arrival array) yields the same values, and the
        ``n_requests`` cap simply stops consuming the arrival process
        (the capped prefix is unchanged).
        """
        spec = self.spec
        length_rng = self._rng.stream("lengths")
        rate_rng = self._rng.stream("rates")
        cap = spec.n_requests
        for req_id, arrival in enumerate(self._arrival_stream()):
            if cap is not None and req_id >= cap:
                return
            prompt_len, output_len = spec.lengths.sample(length_rng)
            rate = spec.rates.sample(rate_rng)
            yield Request(
                req_id=req_id,
                arrival_time=float(arrival),
                prompt_len=prompt_len,
                output_len=output_len,
                rate=rate,
            )

    def build(self) -> list:
        """Return the request list, sorted by arrival time (the
        materialised spelling of :meth:`stream`)."""
        return list(self.stream())
