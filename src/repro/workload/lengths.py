"""Prompt/output length samplers.

The paper's controlled experiments (§7.3) draw input/output lengths
from normal distributions around the S/L means in Table 1; the
ShareGPT-style traces use a heavier-tailed log-normal.  Both samplers
clamp to sane bounds so degenerate draws never reach the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LengthSampler:
    """Base sampler interface: draw (prompt_len, output_len) pairs."""

    min_len: int = 8
    max_len: int = 32768

    def sample(self, rng: np.random.Generator) -> tuple:
        raise NotImplementedError

    def _clamp(self, value: float) -> int:
        return int(min(self.max_len, max(self.min_len, round(value))))


@dataclass(frozen=True)
class NormalLengthSampler(LengthSampler):
    """Normal-distributed lengths (paper §7.3 controlled workloads)."""

    prompt_mean: float = 512.0
    prompt_std: float = 128.0
    output_mean: float = 1024.0
    output_std: float = 256.0

    def sample(self, rng: np.random.Generator) -> tuple:
        prompt = self._clamp(rng.normal(self.prompt_mean, self.prompt_std))
        output = self._clamp(rng.normal(self.output_mean, self.output_std))
        return prompt, output


@dataclass(frozen=True)
class LogNormalLengthSampler(LengthSampler):
    """Log-normal lengths approximating ShareGPT's heavy tail."""

    prompt_median: float = 256.0
    prompt_sigma: float = 0.9
    output_median: float = 512.0
    output_sigma: float = 0.8

    def sample(self, rng: np.random.Generator) -> tuple:
        prompt = self._clamp(rng.lognormal(np.log(self.prompt_median), self.prompt_sigma))
        output = self._clamp(rng.lognormal(np.log(self.output_median), self.output_sigma))
        return prompt, output


# Mean lengths used in Table 1: "S" (short) and "L" (long) settings for
# the RTX 4090; H200 outputs are scaled 2x by the experiment configs.
SHORT_LENGTHS = NormalLengthSampler(
    prompt_mean=512.0, prompt_std=128.0, output_mean=1024.0, output_std=256.0
)
LONG_LENGTHS = NormalLengthSampler(
    prompt_mean=1024.0, prompt_std=256.0, output_mean=2048.0, output_std=512.0
)


def sharegpt_like() -> LogNormalLengthSampler:
    """Sampler tuned to ShareGPT's published length statistics."""
    return LogNormalLengthSampler()
