"""The streaming workload plane: lazy ``Request`` sources.

A *workload stream* is an iterator of :class:`~repro.workload.request.Request`
objects in non-decreasing ``arrival_time`` order.  Where the classic
:meth:`WorkloadBuilder.build() <repro.workload.builder.WorkloadBuilder.build>`
materialises every request of a workload up front — O(total) memory
before the first event fires — a stream yields them one at a time, so
the serving layer's :meth:`feed <repro.serving.server.ServingSystem.feed>`
keeps only a bounded lookahead window of future requests in memory.
This is what makes million-request soak scenarios run at O(active)
footprint (see ARCHITECTURE.md, "Streaming plane").

Determinism contract: a stream and its materialised spelling produce
the *same* request sequence from the same spec + seed.  Arrival
processes draw gaps in bounded chunks (`repro.workload.arrivals`);
numpy ``Generator`` draws are sequence-stable across chunk splits, and
every sampler (arrivals, lengths, rates) owns an independent named RNG
stream, so interleaving the draws per request instead of per batch
changes nothing.

The helpers here are deliberately thin:

* :func:`materialize` — drain a stream into the classic request list
  (the list factories are now this wrapper over the streams).
* :func:`stream_workload` — a :class:`~repro.workload.builder.WorkloadSpec`'s
  stream, by analogy with ``WorkloadBuilder(spec, streams).build()``.
* :func:`ordered` — sanity guard asserting a stream's ordering
  invariant while passing requests through (used by tests and
  defensive call sites; the serving layer re-validates arrival order
  against the engine clock anyway).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.sim.rng import RngStreams
from repro.workload.request import Request


def materialize(stream: Iterable[Request]) -> List[Request]:
    """Drain a workload stream into the classic request list."""
    return list(stream)


def stream_workload(spec, rng_streams: RngStreams) -> Iterator[Request]:
    """Lazy requests for a :class:`~repro.workload.builder.WorkloadSpec`.

    Equivalent to ``WorkloadBuilder(spec, rng_streams).stream()``;
    exists so call sites that think in terms of specs (scenario
    builders, tests) need not name the builder class.
    """
    from repro.workload.builder import WorkloadBuilder

    return WorkloadBuilder(spec, rng_streams).stream()


def ordered(stream: Iterable[Request]) -> Iterator[Request]:
    """Pass ``stream`` through, asserting non-decreasing arrivals.

    Streams feed the event engine directly; an out-of-order request
    would surface deep inside the engine as a "schedule in the past"
    error.  Wrapping a hand-rolled stream in :func:`ordered` turns
    that into an immediate, attributable failure at the source.
    """
    last = None
    for request in stream:
        if last is not None and request.arrival_time < last:
            raise ValueError(
                f"workload stream is out of order: request "
                f"{request.req_id} arrives at {request.arrival_time} "
                f"after an arrival at {last}"
            )
        last = request.arrival_time
        yield request
