"""Multi-turn conversation sessions (chatbot workloads).

The paper motivates TokenFlow with chatbots (§2.2), whose traffic is
*closed-loop*: a user sends turn k+1 only after reading the answer to
turn k and thinking for a while.  That dependency cannot be expressed
as a static arrival list — the follow-up time depends on when the
simulated answer finished streaming — so this module drives sessions
live against a :class:`~repro.serving.server.ServingSystem` using its
``on_request_finished`` hook.

Each turn's prompt carries the conversation history: prompt length
grows by the previous prompt + answer (plus the new question), the
standard multi-turn KV pattern (CachedAttention-style reuse is out of
scope; every turn prefills its full context, as SGLang does without
prefix caching).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.workload.request import Request

# Session req_ids are partitioned as session_id * TURN_STRIDE + turn.
TURN_STRIDE = 1000


@dataclass(frozen=True)
class SessionSpec:
    """One simulated conversation.

    Attributes:
        session_id: unique id; request ids derive from it.
        n_turns: conversation length.
        first_arrival: when turn 0 arrives.
        question_tokens: prompt tokens each new question adds.
        answer_tokens: output tokens per answer.
        think_time_s: gap between finishing reading and asking again.
        rate: the user's consumption rate (tokens/s).
    """

    session_id: int
    n_turns: int = 4
    first_arrival: float = 0.0
    question_tokens: int = 64
    answer_tokens: int = 192
    think_time_s: float = 5.0
    rate: float = 10.0

    def __post_init__(self) -> None:
        if self.n_turns <= 0:
            raise ValueError("n_turns must be positive")
        if self.question_tokens <= 0 or self.answer_tokens <= 0:
            raise ValueError("token counts must be positive")
        if self.think_time_s < 0:
            raise ValueError("think_time_s must be non-negative")
        if self.n_turns > TURN_STRIDE:
            raise ValueError(f"n_turns cannot exceed {TURN_STRIDE}")

    def request_id(self, turn: int) -> int:
        return self.session_id * TURN_STRIDE + turn

    def prompt_len_at(self, turn: int) -> int:
        """History (questions + answers so far) plus the new question."""
        history = turn * (self.question_tokens + self.answer_tokens)
        return history + self.question_tokens


class SessionDriver:
    """Runs closed-loop conversations against a serving system."""

    def __init__(self, system, sessions: list,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not sessions:
            raise ValueError("need at least one session")
        ids = [s.session_id for s in sessions]
        if len(set(ids)) != len(ids):
            raise ValueError("session ids must be unique")
        self.system = system
        self.sessions = {spec.session_id: spec for spec in sessions}
        self._turn: dict = {spec.session_id: 0 for spec in sessions}
        self._rng = rng
        self.completed_sessions: list = []
        if system.on_request_finished is not None:
            raise RuntimeError("serving system already has a finish hook")
        system.on_request_finished = self._on_finished

    # --- driving ----------------------------------------------------------
    def start(self) -> None:
        """Submit every session's first turn."""
        for spec in self.sessions.values():
            self._submit_turn(spec, turn=0, arrival=spec.first_arrival)

    def _submit_turn(self, spec: SessionSpec, turn: int, arrival: float) -> None:
        request = Request(
            req_id=spec.request_id(turn),
            arrival_time=arrival,
            prompt_len=spec.prompt_len_at(turn),
            output_len=spec.answer_tokens,
            rate=spec.rate,
            session_id=spec.session_id,
        )
        self.system.submit([request])

    def _on_finished(self, request) -> None:
        session_id, turn = divmod(request.req_id, TURN_STRIDE)
        spec = self.sessions.get(session_id)
        if spec is None:
            return  # not one of ours (mixed workloads are fine)
        if turn != self._turn[session_id]:
            return
        self._turn[session_id] = turn + 1
        if turn + 1 >= spec.n_turns:
            self.completed_sessions.append(session_id)
            return
        # The user reads to the end of the answer, thinks, then asks.
        buffer = self.system.tracker.get(request.req_id).buffer
        read_done = buffer.final_consumption_time()
        now = self.system.engine.now()
        base = read_done if read_done is not None else now
        think = spec.think_time_s
        if self._rng is not None and think > 0:
            think = float(self._rng.exponential(think))
        next_arrival = max(now, base) + think
        self._submit_turn(spec, turn + 1, next_arrival)

    # --- queries ----------------------------------------------------------
    def turns_completed(self, session_id: int) -> int:
        return self._turn[session_id] - (
            0 if self._turn[session_id] < self.sessions[session_id].n_turns else 0
        )

    @property
    def all_done(self) -> bool:
        return len(self.completed_sessions) == len(self.sessions)

    def session_latency(self, session_id: int) -> Optional[float]:
        """Wall time from the first turn's arrival to the last answer
        being fully read (None until the session completes)."""
        spec = self.sessions[session_id]
        if session_id not in self.completed_sessions:
            return None
        last = self.system.tracker.get(spec.request_id(spec.n_turns - 1))
        end = last.buffer.final_consumption_time()
        assert end is not None
        return end - spec.first_arrival
