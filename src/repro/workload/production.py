"""Production-trace synthesizer (paper Figure 11).

The paper's proprietary trace comes from a China Telecom LLM service;
Figure 11 shows its distribution: diurnal load variation with sharp
peak-hour concentration and heavy-tailed request lengths.  We cannot
obtain the trace itself, so this generator produces arrivals from a
time-varying (sinusoid + peak spikes) rate function via thinning, with
log-normal lengths — the same shape drivers the scheduler reacts to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class ProductionTraceGenerator:
    """Arrivals from a diurnal, peak-spiked rate function.

    Attributes:
        mean_rate: average request rate over the trace (req/s).
        diurnal_amplitude: relative swing of the sinusoidal component
            (0 = constant, 0.8 = load varies 5x trough-to-peak).
        period: period of the diurnal component, in seconds of trace
            time (scaled-down "day").
        peak_times: relative positions (0..1) of sharp peak episodes.
        peak_multiplier: rate multiplier at peak centres.
        peak_width: peak half-width as a fraction of the period.
    """

    mean_rate: float = 2.0
    diurnal_amplitude: float = 0.6
    period: float = 600.0
    peak_times: tuple = (0.35, 0.75)
    peak_multiplier: float = 4.0
    peak_width: float = 0.03

    def __post_init__(self) -> None:
        if self.mean_rate <= 0 or self.period <= 0:
            raise ValueError("mean_rate and period must be positive")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at trace time ``t``."""
        phase = 2.0 * np.pi * (t % self.period) / self.period
        rate = self.mean_rate * (1.0 + self.diurnal_amplitude * np.sin(phase))
        rel = (t % self.period) / self.period
        for peak in self.peak_times:
            dist = abs(rel - peak)
            dist = min(dist, 1.0 - dist)  # wrap-around distance
            if dist < self.peak_width:
                bump = (self.peak_multiplier - 1.0) * (1.0 - dist / self.peak_width)
                rate *= 1.0 + bump
        return float(rate)

    def max_rate(self) -> float:
        """Upper bound on :meth:`rate_at`, used for thinning."""
        return self.mean_rate * (1.0 + self.diurnal_amplitude) * self.peak_multiplier

    def generate(self, duration: float, rng: np.random.Generator) -> np.ndarray:
        """Sample arrivals over ``[0, duration)`` by Poisson thinning."""
        return np.asarray(list(self.generate_stream(duration, rng)))

    def generate_stream(self, duration: float, rng: np.random.Generator):
        """Streaming spelling of :meth:`generate`: arrivals one at a
        time, identical draw sequence (the thinning loop was always
        incremental — this just yields instead of accumulating), so
        memory stays O(1) however long the trace runs."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        upper = self.max_rate()
        t = 0.0
        while True:
            t += rng.exponential(1.0 / upper)
            if t >= duration:
                return
            if rng.uniform() < self.rate_at(t) / upper:
                yield t

    def rate_histogram(self, duration: float, bins: int = 50) -> tuple:
        """Rate-function histogram for the Figure 11 distribution plot."""
        edges = np.linspace(0.0, duration, bins + 1)
        centres = (edges[:-1] + edges[1:]) / 2.0
        rates = np.asarray([self.rate_at(t) for t in centres])
        return centres, rates
