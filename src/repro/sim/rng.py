"""Named, seeded random-number streams.

Every source of randomness in the simulator (arrival process, length
sampler, rate sampler, ...) draws from its own named stream derived
from one root seed.  Adding a new consumer therefore never perturbs
the draws seen by existing consumers, which keeps experiment outputs
stable across code changes.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """Factory of independent ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        if root_seed < 0:
            raise ValueError(f"root_seed must be non-negative, got {root_seed}")
        self._root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream seed mixes the root seed with a stable hash of the
        name (crc32, not Python's randomised ``hash``), so the mapping
        is identical across processes.
        """
        if not name:
            raise ValueError("stream name must be non-empty")
        if name not in self._streams:
            name_hash = zlib.crc32(name.encode("utf-8"))
            seed_seq = np.random.SeedSequence([self._root_seed, name_hash])
            self._streams[name] = np.random.default_rng(seed_seq)
        return self._streams[name]

    def spawn(self, salt: int) -> "RngStreams":
        """Derive an independent family of streams (e.g. per repetition)."""
        return RngStreams(root_seed=zlib.crc32(f"{self._root_seed}:{salt}".encode()))
