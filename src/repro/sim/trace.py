"""Structured event tracing for simulation runs.

A :class:`TraceRecorder` collects `(time, category, event, fields)`
records from any component that accepts one.  The serving loop emits
iteration, token, and lifecycle events when given a recorder, which
makes scheduling pathologies (starvation, thrash, OOM storms) visible
without ad-hoc prints, and exports cleanly to JSONL for external
tooling.

Recording is opt-in and the no-recorder path costs one `is None`
check, so production-sized runs are unaffected.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Optional, Sequence, Union


class TraceRecord:
    """One trace event."""

    __slots__ = ("time", "category", "event", "fields")

    def __init__(self, time: float, category: str, event: str, fields: dict) -> None:
        self.time = time
        self.category = category
        self.event = event
        self.fields = fields

    def as_dict(self) -> dict:
        return {
            "time": self.time,
            "category": self.category,
            "event": self.event,
            **self.fields,
        }

    def __repr__(self) -> str:
        return f"TraceRecord(t={self.time:.4f}, {self.category}.{self.event}, {self.fields})"


class TraceRecorder:
    """In-memory trace sink with category filtering.

    Args:
        categories: if given, only these categories are recorded.
        capacity: ring-buffer bound; oldest records are dropped beyond
            it (None = unbounded).
    """

    def __init__(
        self,
        categories: Optional[Sequence] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self._categories = frozenset(categories) if categories is not None else None
        self._capacity = capacity
        self.records: list = []
        self.dropped = 0

    def wants(self, category: str) -> bool:
        return self._categories is None or category in self._categories

    def record(self, time: float, category: str, event: str, **fields) -> None:
        """Append one event (dropped silently if filtered out)."""
        if not self.wants(category):
            return
        self.records.append(TraceRecord(time, category, event, fields))
        if self._capacity is not None and len(self.records) > self._capacity:
            self.records.pop(0)
            self.dropped += 1

    # --- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def by_category(self, category: str) -> list:
        return [r for r in self.records if r.category == category]

    def by_event(self, event: str) -> list:
        return [r for r in self.records if r.event == event]

    def counts(self) -> dict:
        """{(category, event): count} summary."""
        return dict(Counter((r.category, r.event) for r in self.records))

    def between(self, start: float, end: float) -> list:
        return [r for r in self.records if start <= r.time <= end]

    # --- export --------------------------------------------------------------
    def to_jsonl(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            for record in self.records:
                handle.write(json.dumps(record.as_dict()) + "\n")
        return path
