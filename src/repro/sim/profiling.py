"""Hot-path profiling helpers for the simulation core.

Wraps :mod:`cProfile` so experiments and the perf harness can measure
a run the same way every time: wall-clock, total function calls, peak
RSS, and a compact hot-spot table.  Used by ``repro profile`` (CLI)
and ``benchmarks/test_perf_simcore.py`` to track the perf trajectory
across PRs.

The wall-clock figure comes from a *separate unprofiled call* when
``wall_runs`` is positive — cProfile roughly triples the runtime of
call-heavy code, so timing under the profiler would overstate the cost
of exactly the code this module exists to police.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import resource
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(frozen=True)
class HotSpot:
    """One row of the profile report."""

    ncalls: int
    tottime: float
    cumtime: float
    location: str

    def row(self) -> list:
        return [self.ncalls, round(self.tottime, 3), round(self.cumtime, 3),
                self.location]

    def to_dict(self) -> dict:
        return {
            "ncalls": self.ncalls,
            "tottime": self.tottime,
            "cumtime": self.cumtime,
            "location": self.location,
        }


# Filename-prefix rules mapping profile rows onto the simulator's
# subsystems (first match wins, most specific first).  Rows outside
# the package — numpy, the stdlib, builtins — fall into "runtime".
_SUBSYSTEM_RULES = (
    ("tracker", os.path.join("repro", "core", "tracker.py")),
    ("scheduler", os.path.join("repro", "core", "")),
    ("executor", os.path.join("repro", "gpu", "")),
    ("buffer", os.path.join("repro", "client", "")),
    ("kv", os.path.join("repro", "memory", "")),
    # The sharded cluster plane and its warm-pool plumbing, matched
    # before the generic "serving" rule so coordination cost is
    # attributed to sharding rather than smeared into serving.
    ("sharding", os.path.join("repro", "serving", "shard.py")),
    ("sharding", os.path.join("repro", "orchestration", "")),
    ("serving", os.path.join("repro", "serving", "")),
    ("engine", os.path.join("repro", "sim", "")),
    ("workload", os.path.join("repro", "workload", "")),
    ("other", os.path.join("repro", "")),
)


def _classify_subsystem(filename: str) -> str:
    for name, fragment in _SUBSYSTEM_RULES:
        if fragment in filename:
            return name
    return "runtime"


def collect_subsystems(stats: pstats.Stats) -> list:
    """Per-subsystem exclusive time and call counts, sorted by time.

    Rows are ``{"subsystem", "tottime", "ncalls"}``; tottime is
    exclusive (non-cumulative), so the column sums to the whole
    profiled run and attributes each second to exactly one subsystem.
    """
    buckets: dict = {}
    for func, (_cc, nc, tottime, _cumtime, _callers) in stats.stats.items():
        name = _classify_subsystem(func[0])
        entry = buckets.setdefault(name, [0.0, 0])
        entry[0] += tottime
        entry[1] += nc
    return [
        {"subsystem": name, "tottime": entry[0], "ncalls": entry[1]}
        for name, entry in sorted(
            buckets.items(), key=lambda kv: kv[1][0], reverse=True
        )
    ]


@dataclass
class ProfileReport:
    """Result of :func:`profile_call`."""

    wall_s: float                 # unprofiled wall-clock (best of wall_runs)
    profiled_s: float             # wall-clock under cProfile
    total_calls: int
    primitive_calls: int
    peak_rss_kb: int
    events_per_s: Optional[float] = None   # filled by callers that know |events|
    hotspots: list = field(default_factory=list)       # [HotSpot], by tottime
    cumulative: list = field(default_factory=list)     # [HotSpot], by cumtime
    subsystems: list = field(default_factory=list)     # collect_subsystems rows
    result: object = None         # return value of the profiled callable

    def render_subsystems(self) -> str:
        """The ``--by-subsystem`` table: exclusive seconds per layer."""
        total = sum(row["tottime"] for row in self.subsystems) or 1.0
        lines = ["-- by subsystem (exclusive time) --",
                 f"{'subsystem':<10}  {'tottime':>8}  {'share':>6}  {'ncalls':>12}"]
        for row in self.subsystems:
            lines.append(
                f"{row['subsystem']:<10}  {row['tottime']:>8.3f}  "
                f"{row['tottime'] / total:>6.1%}  {row['ncalls']:>12,}"
            )
        return "\n".join(lines)

    def render(self, top: int = 20) -> str:
        lines = [
            f"wall        {self.wall_s:.3f} s (unprofiled)",
            f"profiled    {self.profiled_s:.3f} s",
            f"calls       {self.total_calls:,} ({self.primitive_calls:,} primitive)",
            f"peak rss    {self.peak_rss_kb / 1024:.1f} MiB",
        ]
        if self.events_per_s is not None:
            lines.append(f"events/s    {self.events_per_s:,.0f}")
        lines.append("")
        lines.append(f"-- top {top} by tottime --")
        lines.append(f"{'ncalls':>10}  {'tottime':>8}  {'cumtime':>8}  location")
        for spot in self.hotspots[:top]:
            lines.append(
                f"{spot.ncalls:>10}  {spot.tottime:>8.3f}  {spot.cumtime:>8.3f}  "
                f"{spot.location}"
            )
        if self.cumulative:
            lines.append("")
            lines.append(f"-- top {top} by cumtime --")
            lines.append(
                f"{'ncalls':>10}  {'tottime':>8}  {'cumtime':>8}  location"
            )
            for spot in self.cumulative[:top]:
                lines.append(
                    f"{spot.ncalls:>10}  {spot.tottime:>8.3f}  "
                    f"{spot.cumtime:>8.3f}  {spot.location}"
                )
        return "\n".join(lines)

    def to_dict(self, top: Optional[int] = None) -> dict:
        """JSON-ready summary (hot-spot tables included) so profile
        runs are diffable CI artifacts (``repro profile --json``)."""
        return {
            "wall_s": self.wall_s,
            "profiled_s": self.profiled_s,
            "total_calls": self.total_calls,
            "primitive_calls": self.primitive_calls,
            "peak_rss_kb": self.peak_rss_kb,
            "events_per_s": self.events_per_s,
            "hotspots": [s.to_dict() for s in self.hotspots[:top]],
            "cumulative": [s.to_dict() for s in self.cumulative[:top]],
            "subsystems": [dict(row) for row in self.subsystems],
        }


def _collect_hotspots(stats: pstats.Stats, top: int) -> tuple:
    """(by-tottime, by-cumtime) hot-spot tables from a stats object."""
    spots = []
    for func, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():
        filename, lineno, name = func
        location = f"{filename}:{lineno}({name})"
        spots.append(HotSpot(ncalls=nc, tottime=tottime, cumtime=cumtime,
                             location=location))
    by_tottime = sorted(spots, key=lambda s: s.tottime, reverse=True)[:top]
    by_cumtime = sorted(spots, key=lambda s: s.cumtime, reverse=True)[:top]
    return by_tottime, by_cumtime


def bare_run_rss_kb(code: str, timeout_s: float = 600.0) -> Optional[int]:
    """Peak RSS (KiB) of ``code`` executed in a fresh interpreter.

    In-process ``ru_maxrss`` is a *process-lifetime high-water mark*:
    inside a test suite (or under cProfile, which roughly triples live
    frame volume) it reports whatever the hungriest earlier moment
    consumed, not the workload's own footprint.  A bare subprocess
    measures just the workload.  The child inherits ``PYTHONPATH`` plus
    a ``src`` fallback so it can import the package from a checkout.
    Returns ``None`` if the child fails (callers treat RSS as a soft,
    best-effort metric).
    """
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))), "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), src) if p
    )
    # The child reports VmHWM (per-address-space peak, reset by exec)
    # rather than ru_maxrss: on Linux the rusage high-water mark is
    # inherited across fork/exec, so a child spawned from a fat parent
    # (a pytest run) would re-report the parent's peak.  The fallback
    # (no /proc) normalises ru_maxrss's platform unit — bytes on
    # macOS/BSD, KiB on Linux.
    wrapped = (
        code
        + "\nimport resource, sys"
        + "\npeak_kb = None"
        + "\ntry:"
        + "\n    with open('/proc/self/status') as fh:"
        + "\n        for line in fh:"
        + "\n            if line.startswith('VmHWM:'):"
        + "\n                peak_kb = int(line.split()[1])"
        + "\n                break"
        + "\nexcept OSError:"
        + "\n    pass"
        + "\nif peak_kb is None:"
        + "\n    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss"
        + "\n    if sys.platform == 'darwin':"
        + "\n        peak_kb //= 1024"
        + "\nsys.stdout.write('RSS_KB=%d\\n' % peak_kb)"
    )
    try:
        proc = subprocess.run(
            [sys.executable, "-c", wrapped],
            capture_output=True, text=True, timeout=timeout_s, env=env,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    for line in proc.stdout.splitlines():
        if line.startswith("RSS_KB="):
            return int(line.split("=", 1)[1])
    return None


def profile_call(
    fn: Callable[[], object],
    top: int = 25,
    wall_runs: int = 1,
) -> ProfileReport:
    """Profile ``fn()`` and return a :class:`ProfileReport`.

    Args:
        fn: zero-argument callable (wrap arguments in a lambda/partial).
            It is invoked ``wall_runs`` times unprofiled for the wall
            measurement plus once under cProfile for the call counts;
            it must therefore be repeatable.
        top: number of hot spots to keep.
        wall_runs: unprofiled timing runs (best-of).  0 skips separate
            timing and reports the profiled duration as ``wall_s``.
    """
    wall_best: Optional[float] = None
    result: object = None
    for _ in range(max(0, wall_runs)):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if wall_best is None or elapsed < wall_best:
            wall_best = elapsed

    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    profiled_result = fn()
    profiler.disable()
    profiled_s = time.perf_counter() - t0
    if wall_runs <= 0:
        result = profiled_result
        wall_best = profiled_s

    stats = pstats.Stats(profiler)
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    hotspots, cumulative = _collect_hotspots(stats, top)
    return ProfileReport(
        wall_s=wall_best if wall_best is not None else profiled_s,
        profiled_s=profiled_s,
        total_calls=stats.total_calls,
        primitive_calls=stats.prim_calls,
        peak_rss_kb=peak_rss_kb,
        hotspots=hotspots,
        cumulative=cumulative,
        subsystems=collect_subsystems(stats),
        result=result,
    )
