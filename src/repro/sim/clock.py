"""Simulation clock.

The clock is owned by the engine; components read it but only the
engine advances it.  Time is a float in seconds of simulated time.
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised when a component tries to move the clock backwards."""


class SimClock:
    """Monotonic simulation clock.

    The clock starts at ``0.0`` (or an explicit epoch) and can only
    move forward.  Components hold a reference to the clock and call
    :meth:`now` whenever they need a timestamp, which keeps every
    subsystem on a single consistent timeline.
    """

    def __init__(self, epoch: float = 0.0) -> None:
        if epoch < 0.0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        self._now = float(epoch)

    def now(self) -> float:
        """Return the current simulation time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock to ``timestamp``.

        Raises :class:`ClockError` if the timestamp is in the past;
        advancing to the current time is a no-op and is allowed, since
        several events may share one timestamp.
        """
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
