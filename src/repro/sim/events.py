"""Event types and the timestamp-ordered event queue.

Events are opaque callbacks tagged with a timestamp and an insertion
sequence number.  Ordering is (timestamp, sequence), so events that
share a timestamp run in the order they were scheduled — this keeps
runs deterministic without relying on heap tie-breaking accidents.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time at which the event fires.
        seq: insertion order, used to break timestamp ties.
        action: zero-argument callable executed when the event fires.
        label: human-readable tag for debugging and tracing.
        cancelled: set via :meth:`cancel`; cancelled events are skipped.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Min-heap of events ordered by (time, insertion sequence)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute ``time`` and return the event."""
        event = Event(time=time, seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest live event, or ``None`` if the queue is empty.

        Cancelled events are discarded transparently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            self._live -= 1
            if event.cancelled:
                continue
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._live -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
