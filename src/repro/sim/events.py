"""Event types and the timestamp-ordered event queue.

Events are opaque callbacks tagged with a timestamp and an insertion
sequence number.  Ordering is (timestamp, sequence), so events that
share a timestamp run in the order they were scheduled — this keeps
runs deterministic without relying on heap tie-breaking accidents.

Cancellation is lazy in the heap (the entry is discarded when it
surfaces) but eager in the accounting: :meth:`Event.cancel` notifies
the owning queue immediately, so ``len(queue)`` / ``pending()`` never
overcount between a cancel and the eventual pop.  When cancelled
entries come to dominate the heap (>50 % dead), the queue compacts —
rebuilding the heap from the live entries — so long cluster runs with
heavy cancellation keep the heap proportional to the live event count.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time at which the event fires.
        seq: insertion order, used to break timestamp ties.
        action: zero-argument callable executed when the event fires.
        label: human-readable tag for debugging and tracing.
        cancelled: set via :meth:`cancel`; cancelled events are skipped.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    # Owning queue while the event is live in it; cleared on pop so a
    # late cancel() cannot double-decrement the live count.
    _queue: Optional["EventQueue"] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        Idempotent; the owning queue's live count is corrected at
        cancel time, not when the stale heap entry is discarded.
        """
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._note_cancelled()


class EventQueue:
    """Min-heap of events ordered by (time, insertion sequence)."""

    # Compaction threshold: never compact heaps smaller than this (the
    # O(n) rebuild must stay amortised against real dead-entry volume).
    _COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute ``time`` and return the event."""
        event = Event(
            time=time, seq=next(self._counter), action=action, label=label,
            _queue=self,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def _note_cancelled(self) -> None:
        """Accounting hook: a live event of ours was just cancelled.

        Compacts the heap when cancelled entries exceed half of it:
        each compaction removes >n/2 dead entries and costs O(n), so
        the rebuild work is amortised O(1) per cancellation, and
        ordering is untouched (events compare by (time, seq)).
        """
        self._live -= 1
        heap = self._heap
        if (
            len(heap) >= self._COMPACT_MIN_SIZE
            and (len(heap) - self._live) * 2 > len(heap)
        ):
            self._heap = [event for event in heap if not event.cancelled]
            heapq.heapify(self._heap)

    def pop(self) -> Optional[Event]:
        """Pop the earliest live event, or ``None`` if the queue is empty.

        Cancelled events are discarded transparently (their live count
        was already corrected at cancel time).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event._queue = None
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest live event, or ``None``.

        Dead (cancelled) heads are discarded on the way, so the value
        is exact, not an upper bound — callers use it both as the run
        loop's next-event probe and as the *decision horizon* for
        closed-form multi-step advances (nothing scheduled can fire
        strictly before this time).
        """
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0].time

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
