"""Discrete-event simulation kernel.

This package provides the minimal machinery every other subsystem runs
on: a simulation clock, a priority event queue, a deterministic engine,
and seeded random-number streams.

The engine is deliberately small: subsystems schedule callbacks at
absolute or relative simulation times, and the engine executes them in
timestamp order (FIFO among ties).  All nondeterminism is funnelled
through :class:`repro.sim.rng.RngStreams` so a run is reproducible from
a single root seed.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.sim.engine import SimEngine
from repro.sim.rng import RngStreams

__all__ = ["SimClock", "Event", "EventQueue", "SimEngine", "RngStreams"]
