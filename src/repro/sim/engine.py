"""Deterministic discrete-event engine.

Components schedule callbacks via :meth:`SimEngine.call_at` /
:meth:`SimEngine.call_after`; :meth:`SimEngine.run` drains the event
queue in timestamp order, advancing the shared clock.  A run is fully
determined by the scheduled callbacks and the RNG seed, which is what
makes the serving experiments reproducible.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue


class SimEngine:
    """Event loop driving a simulation run."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._queue = EventQueue()
        self._events_processed = 0
        self._running = False
        self._stopped = False
        self._run_until: Optional[float] = None

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    # --- decision horizon -------------------------------------------------
    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or ``None``.

        This is the engine's *decision horizon*: no externally visible
        state can change strictly before this instant, so components
        may advance their own state in closed form up to (but not
        including) it — the macro-step decode fusion relies on this.
        """
        return self._queue.peek_time()

    @property
    def run_until(self) -> Optional[float]:
        """The ``until`` bound of the in-progress :meth:`run` call.

        ``None`` outside :meth:`run` or when running unbounded.  Fused
        multi-iteration advances must not cross it: events completing
        after ``until`` stay pending for the *next* run() call, exactly
        as per-iteration events would.
        """
        return self._run_until

    def now(self) -> float:
        """Current simulation time."""
        return self.clock.now()

    def call_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulation time ``time``.

        Scheduling in the past raises ``ValueError`` — it would silently
        reorder causality otherwise.
        """
        if time < self.clock.now():
            raise ValueError(
                f"cannot schedule event in the past: now={self.clock.now()}, at={time}"
            )
        return self._queue.push(time, action, label)

    def call_after(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self.clock.now() + delay, action, label)

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Args:
            until: stop once the next event would fire after this time
                (the clock is left at ``until`` in that case).
            max_events: safety valve against runaway loops.

        Returns:
            The simulation time when the loop exited.
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run() call)")
        self._running = True
        self._stopped = False
        self._run_until = until
        executed = 0
        try:
            while not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.clock.advance_to(until)
                    break
                event = self._queue.pop()
                assert event is not None
                self.clock.advance_to(event.time)
                event.action()
                self._events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
            self._run_until = None
        if until is not None and self.clock.now() < until and not self._queue:
            # Nothing left to do before the horizon: jump to it so the
            # caller sees a consistent end-of-run timestamp.
            self.clock.advance_to(until)
        return self.clock.now()
