"""Deterministic discrete-event engine.

Components schedule callbacks via :meth:`SimEngine.call_at` /
:meth:`SimEngine.call_after`; :meth:`SimEngine.run` drains the event
queue in timestamp order, advancing the shared clock.  A run is fully
determined by the scheduled callbacks and the RNG seed, which is what
makes the serving experiments reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue


class SimEngine:
    """Event loop driving a simulation run."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._queue = EventQueue()
        self._events_processed = 0
        self._running = False
        self._stopped = False
        self._run_until: Optional[float] = None

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    # --- decision horizon -------------------------------------------------
    def next_event_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or ``None``.

        This is the engine's *decision horizon*: no externally visible
        state can change strictly before this instant, so components
        may advance their own state in closed form up to (but not
        including) it — the macro-step decode fusion relies on this.
        """
        return self._queue.peek_time()

    @property
    def run_until(self) -> Optional[float]:
        """The ``until`` bound of the in-progress :meth:`run` call.

        ``None`` outside :meth:`run` or when running unbounded.  Fused
        multi-iteration advances must not cross it: events completing
        after ``until`` stay pending for the *next* run() call, exactly
        as per-iteration events would.
        """
        return self._run_until

    def now(self) -> float:
        """Current simulation time."""
        return self.clock.now()

    def call_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulation time ``time``.

        Scheduling in the past raises ``ValueError`` — it would silently
        reorder causality otherwise.
        """
        if time < self.clock.now():
            raise ValueError(
                f"cannot schedule event in the past: now={self.clock.now()}, at={time}"
            )
        return self._queue.push(time, action, label)

    def call_after(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self.clock.now() + delay, action, label)

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Args:
            until: stop once the next event would fire after this time
                (the clock is left at ``until`` in that case).
            max_events: safety valve against runaway loops.

        Returns:
            The simulation time when the loop exited.
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run() call)")
        self._running = True
        self._stopped = False
        self._run_until = until
        executed = 0
        try:
            while not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.clock.advance_to(until)
                    break
                event = self._queue.pop()
                assert event is not None
                self.clock.advance_to(event.time)
                event.action()
                self._events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
            self._run_until = None
        if until is not None and self.clock.now() < until and not self._queue:
            # Nothing left to do before the horizon: jump to it so the
            # caller sees a consistent end-of-run timestamp.
            self.clock.advance_to(until)
        return self.clock.now()

    def run_before(self, horizon: float, until: Optional[float] = None) -> float:
        """Drain events strictly *before* ``horizon``, then advance to it.

        The conservative-window primitive of the sharded cluster plane:
        a shard replays the single-process event order exactly by
        draining everything scheduled before the next dispatch instant,
        leaving events *at* the instant pending — dispatch-time router
        reads and admissions interleave with same-timestamp events in
        the same order the shared-engine run produces.

        ``until`` sets :attr:`run_until` for the drained events (the
        enclosing run's safety horizon), so fused decode windows obey
        the same bound they would inside one ``run(until=...)`` call;
        ``horizon`` itself enters fusion planning through
        :meth:`next_event_time` (pending dispatches are part of the
        decision horizon), not through ``run_until``.
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run() call)")
        self._running = True
        self._stopped = False
        self._run_until = until
        try:
            while not self._stopped:
                next_time = self._queue.peek_time()
                if next_time is None or next_time >= horizon:
                    break
                event = self._queue.pop()
                assert event is not None
                self.clock.advance_to(event.time)
                event.action()
                self._events_processed += 1
        finally:
            self._running = False
            self._run_until = None
        if self.clock.now() < horizon:
            self.clock.advance_to(horizon)
        return self.clock.now()


class ScopedEngine:
    """A per-component view of a shared :class:`SimEngine`.

    Events scheduled through it land in the shared queue (one global
    timeline, one run loop, unchanged ordering), but
    :meth:`next_event_time` answers with the earliest pending event
    *scheduled through this view* — merged with an optional external
    horizon callable — instead of the global minimum.

    This is what makes cluster fusion windows partition-invariant: a
    :class:`~repro.serving.server.ServingSystem` inside a cluster
    plans its macro-step decode windows against its *own* decision
    horizon (its events plus the cluster's next dispatch instant), so
    a sibling replica's internal events never truncate its windows.
    The same instance therefore forms the same windows whether its
    siblings share the process (classic cluster) or live in another
    shard (sharded cluster) — per-instance reports, executor stats
    included, stay bit-identical across partitionings.

    The own-event heap holds the very :class:`Event` objects pushed to
    the shared queue; entries that were executed (``_queue`` cleared on
    pop) or cancelled are lazily discarded when they surface.  Dead
    entries carry timestamps at or before the clock, so each peek
    drains them from the front — the heap stays proportional to this
    component's live event count.
    """

    def __init__(
        self,
        base: SimEngine,
        external_horizon: Optional[Callable[[], Optional[float]]] = None,
    ) -> None:
        self.base = base
        self.external_horizon = external_horizon
        self._own: list = []

    # --- scheduling (tracked) ---------------------------------------------
    def call_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        event = self.base.call_at(time, action, label)
        heapq.heappush(self._own, event)
        return event

    def call_after(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        event = self.base.call_after(delay, action, label)
        heapq.heappush(self._own, event)
        return event

    # --- scoped decision horizon ------------------------------------------
    def own_event_time(self) -> Optional[float]:
        """Earliest live event scheduled *through this view*, ignoring
        the external horizon.

        The sharded plane's trajectory snapshots read this to learn the
        one already-scheduled completion that can change an instance's
        routing metric, independent of where the dispatch ladder
        currently ends — extending the ladder (confirmed placements
        arriving later) moves the external horizon but never this.
        """
        own = self._own
        while own and (own[0].cancelled or own[0]._queue is None):
            heapq.heappop(own)
        return own[0].time if own else None

    def next_event_time(self) -> Optional[float]:
        mine = self.own_event_time()
        external = (
            self.external_horizon() if self.external_horizon is not None else None
        )
        if mine is None:
            return external
        if external is None:
            return mine
        return mine if mine <= external else external

    # --- shared-engine delegation -----------------------------------------
    @property
    def clock(self):
        return self.base.clock

    def now(self) -> float:
        return self.base.now()

    @property
    def run_until(self) -> Optional[float]:
        return self.base.run_until

    @property
    def events_processed(self) -> int:
        return self.base.events_processed

    def stop(self) -> None:
        self.base.stop()

    def pending(self) -> int:
        return self.base.pending()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        return self.base.run(until=until, max_events=max_events)

    def run_before(self, horizon: float, until: Optional[float] = None) -> float:
        return self.base.run_before(horizon, until=until)
