"""TokenFlow (EuroSys '26) reproduction.

A discrete-event reproduction of *TokenFlow: Responsive LLM Text
Streaming Serving under Request Burst via Preemptive Scheduling*:
buffer-aware preemptive scheduling plus hierarchical GPU/CPU KV-cache
management, evaluated against SGLang-style FCFS and an Andes-like
QoE scheduler on a roofline GPU serving simulator.

Quickstart::

    from repro import (
        ServingConfig, ServingSystem, TokenFlowScheduler,
        WorkloadSpec, WorkloadBuilder, RngStreams,
    )

    config = ServingConfig(hardware="h200", model="llama3-8b", mem_frac=0.3)
    system = ServingSystem(config, TokenFlowScheduler())
    requests = WorkloadBuilder(WorkloadSpec(arrival="burst", n_requests=64),
                               RngStreams(0)).build()
    system.submit(requests)
    system.run()
    print(system.report().summary_row())
"""

from repro.baselines import AndesScheduler, SGLangChunkedScheduler, SGLangScheduler
from repro.core import (
    QoSParams,
    RequestTracker,
    TokenFlowParams,
    TokenFlowScheduler,
    UtilityParams,
    WorkingSetParams,
)
from repro.gpu import HardwareSpec, LatencyModel, ModelSpec, get_hardware, get_model
from repro.memory import HierarchicalKVManager, KVManagerConfig
from repro.serving import RunReport, ServingConfig, ServingSystem
from repro.sim import RngStreams, SimEngine
from repro.workload import Request, WorkloadBuilder, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "AndesScheduler",
    "SGLangChunkedScheduler",
    "SGLangScheduler",
    "QoSParams",
    "RequestTracker",
    "TokenFlowParams",
    "TokenFlowScheduler",
    "UtilityParams",
    "WorkingSetParams",
    "HardwareSpec",
    "LatencyModel",
    "ModelSpec",
    "get_hardware",
    "get_model",
    "HierarchicalKVManager",
    "KVManagerConfig",
    "RunReport",
    "ServingConfig",
    "ServingSystem",
    "RngStreams",
    "SimEngine",
    "Request",
    "WorkloadBuilder",
    "WorkloadSpec",
    "__version__",
]
