"""SGLang with chunked prefill (paper baseline #2).

Scheduling policy is identical to :class:`SGLangScheduler`; the
difference lives in the serving loop, which splits prompts into
bounded chunks so long prefills do not monopolise iterations
(Sarathi-style).  The scheduler subclass exists so experiment configs
can select the variant by name and so the serving loop knows to enable
chunking.
"""

from __future__ import annotations

from repro.baselines.sglang import SGLangScheduler


class SGLangChunkedScheduler(SGLangScheduler):
    """FCFS + chunked prefill marker (serving loop reads ``wants_chunked``)."""

    name = "sglang-chunked"
    wants_chunked_prefill = True
