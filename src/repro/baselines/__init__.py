"""Baseline schedulers the paper compares against (§7.1.4).

* :class:`~repro.baselines.sglang.SGLangScheduler` — conservative
  FCFS, prefill-first admission, preemption only as reactive memory
  management (recompute-based), exactly the behaviour §2.3 critiques.
* :class:`~repro.baselines.sglang_chunked.SGLangChunkedScheduler` —
  the same policy with chunked prefill enabled in the serving loop.
* :class:`~repro.baselines.andes.AndesScheduler` — a QoE-aware
  preemptive scheduler in the style of Andes (Liu et al., 2024),
  reimplemented the way the paper did: urgency-driven preemption with
  recompute-based context restore and no proactive memory management.
"""

from repro.baselines.andes import AndesParams, AndesScheduler
from repro.baselines.mlfq import MLFQParams, MLFQScheduler
from repro.baselines.sglang import SGLangScheduler
from repro.baselines.sglang_chunked import SGLangChunkedScheduler

__all__ = [
    "SGLangScheduler",
    "SGLangChunkedScheduler",
    "AndesScheduler",
    "AndesParams",
    "MLFQScheduler",
    "MLFQParams",
]
