"""FastServe-style skip-join MLFQ baseline (extension comparator).

FastServe (Wu et al., 2023 — the paper's related work §9) schedules
LLM requests with a multi-level feedback queue: requests start in a
priority level chosen by their prompt length (skip-join), are demoted
as they consume service quantum, and higher levels preempt lower ones.
Preemption is recompute-based, like the other non-TokenFlow baselines.

This is *not* one of the paper's evaluated baselines; it is included
as an extension comparator because MLFQ is the classic
streaming-agnostic preemptive policy — it minimises completion-time
style metrics while knowing nothing about client buffers, which makes
it a sharp contrast for TokenFlow's buffer-aware preemption in the
extension benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.serving.interface import BaseScheduler, SchedulerDecision, SystemView


@dataclass(frozen=True)
class MLFQParams:
    """Skip-join MLFQ knobs.

    Attributes:
        tick_interval: scheduling-pass period.
        n_levels: number of priority levels (0 = highest).
        base_quantum_tokens: service quantum of level 0; each level
            doubles it.
        skip_join_threshold: prompt length granularity for the initial
            level (longer prompts start lower, as in FastServe).
        admission_watermark_frac: free-block watermark for admission.
        max_preempts_per_tick: action cap per pass.
    """

    tick_interval: float = 0.5
    n_levels: int = 4
    base_quantum_tokens: int = 64
    skip_join_threshold: int = 512
    admission_watermark_frac: float = 0.05
    max_preempts_per_tick: int = 8

    def __post_init__(self) -> None:
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if self.n_levels < 1:
            raise ValueError("need at least one level")
        if self.base_quantum_tokens <= 0:
            raise ValueError("base_quantum_tokens must be positive")
        if self.skip_join_threshold <= 0:
            raise ValueError("skip_join_threshold must be positive")


class MLFQScheduler(BaseScheduler):
    """Skip-join multi-level feedback queue with recompute preemption."""

    name = "mlfq"

    def __init__(self, params: Optional[MLFQParams] = None) -> None:
        self.params = params if params is not None else MLFQParams()
        self.tick_interval = self.params.tick_interval
        self._levels: dict = {}          # req_id -> current level
        self._served_tokens: dict = {}   # req_id -> tokens since last demotion

    def scheduling_cost_s(self) -> float:
        return 0.0002

    # --- level bookkeeping ------------------------------------------------------
    def initial_level(self, prompt_len: int) -> int:
        """Skip-join: longer prompts join a lower priority level."""
        level = prompt_len // self.params.skip_join_threshold
        return min(self.params.n_levels - 1, level)

    def quantum(self, level: int) -> int:
        return self.params.base_quantum_tokens * (2 ** level)

    def level_of(self, request) -> int:
        if request.req_id not in self._levels:
            self._levels[request.req_id] = self.initial_level(request.prompt_len)
            self._served_tokens[request.req_id] = 0
        return self._levels[request.req_id]

    def note_progress(self, request) -> None:
        """Demote requests that exhausted their level's quantum."""
        level = self.level_of(request)
        served = request.generated - self._served_tokens.get(request.req_id, 0)
        if served >= self.quantum(level) and level < self.params.n_levels - 1:
            self._levels[request.req_id] = level + 1
            self._served_tokens[request.req_id] = request.generated

    # --- scheduling ---------------------------------------------------------------
    def can_fuse_decode(self, view: SystemView) -> bool:
        """Boundary only admits waiting requests, so ask it directly:
        an empty decision now stays empty for the whole fused window
        (MLFQ *skips* blocked candidates rather than breaking, but
        every candidate's block condition is monotone — free blocks
        only shrink and no slot appears).  The boundary's only side
        effect, lazy level registration, is idempotent and happens on
        this gate call exactly as the skipped calls would have done it.
        """
        return self.on_iteration_boundary(view).is_empty()

    def on_iteration_boundary(self, view: SystemView) -> SchedulerDecision:
        """Admit by (level, arrival) priority while memory allows."""
        decision = SchedulerDecision()
        watermark = int(view.kv.gpu_pool.capacity * self.params.admission_watermark_frac)
        free = view.kv.gpu_free_blocks()
        active = len(view.running) + len(view.prefill_queue) + len(view.loading)
        candidates = sorted(
            view.waiting, key=lambda r: (self.level_of(r), r.arrival_time)
        )
        for request in candidates:
            if active >= view.max_batch:
                break
            needed = view.kv.blocks_for_tokens(request.prompt_len)
            if needed + watermark > free:
                continue  # MLFQ skips blocked heads (no strict FCFS)
            decision.admit.append(request)
            free -= needed
            active += 1
        return decision

    def on_tick(self, view: SystemView) -> SchedulerDecision:
        """Higher levels preempt lower ones; demote quantum-expired."""
        decision = SchedulerDecision()
        for request in view.running:
            self.note_progress(request)
        needy = sorted(
            list(view.waiting) + list(view.preempted),
            key=lambda r: (self.level_of(r), r.arrival_time),
        )
        if not needy:
            return decision
        victims = sorted(
            view.running,
            key=lambda r: (self.level_of(r), r.arrival_time),
            reverse=True,  # lowest level (largest index) first
        )
        watermark = int(view.kv.gpu_pool.capacity * self.params.admission_watermark_frac)
        free = view.kv.gpu_free_blocks()
        active = len(view.running) + len(view.prefill_queue) + len(view.loading)
        preempts_left = self.params.max_preempts_per_tick
        for request in needy:
            needed = view.kv.blocks_for_tokens(
                request.prompt_len if request.req_id not in self._levels
                or request.generated == 0 else request.context_len
            )
            while (
                (active >= view.max_batch or needed + watermark > free)
                and victims
                and preempts_left > 0
                and self.level_of(victims[0]) > self.level_of(request)
            ):
                victim = victims.pop(0)
                decision.preempt.append(victim)
                free += view.kv.gpu_pool.used_by(victim.req_id)
                active -= 1
                preempts_left -= 1
            if active >= view.max_batch or needed + watermark > free:
                continue
            if request.state.value == "queued":
                decision.admit.append(request)
            else:
                decision.resume_recompute.append(request)
            free -= needed
            active += 1
        decision.validate()
        return decision

    def select_oom_victims(self, view: SystemView, blocks_needed: int) -> list:
        """Reactive OOM: evict the lowest-level requests first."""
        ranked = sorted(
            view.running,
            key=lambda r: (self.level_of(r), r.arrival_time),
            reverse=True,
        )
        victims: list = []
        freed = 0
        for request in ranked:
            if freed >= blocks_needed:
                break
            victims.append(request)
            freed += view.kv.gpu_pool.used_by(request.req_id)
        return victims
