"""SGLang-style baseline: FCFS with prefill-first admission.

Requests are admitted strictly in arrival order whenever the KV pool
can hold their prompt (plus a decode-growth watermark).  There is no
periodic scheduling pass and no proactive preemption: the only
preemption is the reactive OOM path, which drops the most recently
admitted request's KV (vLLM/SGLang recompute-style) when decode block
allocation fails.
"""

from __future__ import annotations

from repro.serving.interface import BaseScheduler, SchedulerDecision, SystemView


class SGLangScheduler(BaseScheduler):
    """Conservative FCFS scheduling (paper baseline #1)."""

    name = "sglang"
    tick_interval = None  # no periodic pass

    def __init__(self, admission_watermark_frac: float = 0.05,
                 scheduling_cost: float = 0.00007) -> None:
        if not 0 <= admission_watermark_frac < 1:
            raise ValueError("admission_watermark_frac must be in [0, 1)")
        self.admission_watermark_frac = admission_watermark_frac
        self._scheduling_cost = scheduling_cost

    def scheduling_cost_s(self) -> float:
        # ~0.07 ms per pass, the figure the paper quotes for SGLang (§7.6).
        return self._scheduling_cost

    def can_fuse_decode(self, view: SystemView) -> bool:
        """Boundary is stateless and pure, so ask it directly.

        An empty decision now stays empty for the whole fused window:
        every blocking condition the boundary can hit (all decode
        slots taken; the FCFS-first preempted request or the waiting
        head memory-blocked) is monotone inside a window, where the
        active count is frozen and free blocks only shrink.  Reusing
        the real boundary keeps the gate in lock-step with any future
        admission-rule change.
        """
        return self.on_iteration_boundary(view).is_empty()

    def on_iteration_boundary(self, view: SystemView) -> SchedulerDecision:
        """Admit in strict FCFS order while the prompt fits in memory."""
        decision = SchedulerDecision()
        watermark = int(view.kv.gpu_pool.capacity * self.admission_watermark_frac)
        free = view.kv.gpu_free_blocks()
        active = len(view.running) + len(view.prefill_queue) + len(view.loading)
        # Preempted requests (reactive OOM victims) re-enter first, FCFS.
        for request in sorted(view.preempted, key=lambda r: r.arrival_time):
            if active >= view.max_batch:
                break
            needed = view.kv.blocks_for_tokens(request.context_len)
            if needed + watermark > free:
                break
            decision.resume_recompute.append(request)
            free -= needed
            active += 1
        for request in view.waiting:
            if active >= view.max_batch:
                break
            needed = view.kv.blocks_for_tokens(request.prompt_len)
            if needed + watermark > free:
                break  # head-of-line blocking: strict FCFS
            decision.admit.append(request)
            free -= needed
            active += 1
        return decision
