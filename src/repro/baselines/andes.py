"""Andes-like QoE-aware baseline (paper baseline #3).

Andes (Liu et al., 2024) schedules for per-request Quality of
Experience: requests falling behind their expected token-delivery
schedule gain priority, and requests running ahead can be preempted.
Following the paper's own benchmarking methodology (§6: "we also
implemented the Andes in SGLang using a recompute-based preemption
approach"), this reimplementation:

* runs a periodic pass that ranks requests by QoE urgency (how far
  behind schedule their token delivery is);
* preempts ahead-of-schedule running requests to make room for urgent
  waiting/preempted ones;
* restores context by *recompute only* — Andes has no hierarchical KV
  offload, so each preemption discards the KV cache and resumption
  pays a full re-prefill (the inefficiency TokenFlow's memory
  co-design removes);
* has no I/O awareness and no admission conservatism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.serving.interface import BaseScheduler, SchedulerDecision, SystemView


@dataclass(frozen=True)
class AndesParams:
    """Knobs of the Andes-like policy.

    Attributes:
        tick_interval: period of the QoE scheduling pass.
        ahead_threshold_s: a running request is preemptible once its
            client buffer covers this many seconds of playback.
        max_preempts_per_tick: action cap per pass.
        admission_watermark_frac: free-block watermark for admission.
    """

    tick_interval: float = 0.5
    ahead_threshold_s: float = 1.0
    max_preempts_per_tick: int = 8
    admission_watermark_frac: float = 0.05

    def __post_init__(self) -> None:
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if self.ahead_threshold_s < 0:
            raise ValueError("ahead_threshold_s must be non-negative")
        if self.max_preempts_per_tick <= 0:
            raise ValueError("max_preempts_per_tick must be positive")


class AndesScheduler(BaseScheduler):
    """QoE-urgency preemptive scheduling with recompute-based restore."""

    name = "andes"

    def __init__(self, params: Optional[AndesParams] = None) -> None:
        self.params = params if params is not None else AndesParams()
        self.tick_interval = self.params.tick_interval

    def scheduling_cost_s(self) -> float:
        return 0.0003

    # --- fast path: FCFS admission while memory allows -----------------------
    def can_fuse_decode(self, view: SystemView) -> bool:
        """Boundary is stateless and pure (FCFS admission only), so ask
        it directly: an empty decision now stays empty for the whole
        fused window — no free slot appears and free blocks only
        shrink, so a blocked head stays blocked."""
        return self.on_iteration_boundary(view).is_empty()

    def on_iteration_boundary(self, view: SystemView) -> SchedulerDecision:
        decision = SchedulerDecision()
        watermark = int(view.kv.gpu_pool.capacity * self.params.admission_watermark_frac)
        free = view.kv.gpu_free_blocks()
        active = len(view.running) + len(view.prefill_queue) + len(view.loading)
        for request in view.waiting:
            if active >= view.max_batch:
                break
            needed = view.kv.blocks_for_tokens(request.prompt_len)
            if needed + watermark > free:
                break
            decision.admit.append(request)
            free -= needed
            active += 1
        return decision

    # --- the QoE pass -----------------------------------------------------------
    def on_tick(self, view: SystemView) -> SchedulerDecision:
        decision = SchedulerDecision()
        needy = self._needy_requests(view)
        if not needy:
            return decision
        watermark = int(view.kv.gpu_pool.capacity * self.params.admission_watermark_frac)
        free = view.kv.gpu_free_blocks()
        preempts_left = self.params.max_preempts_per_tick
        victims = self._preemption_candidates(view)
        active = len(view.running) + len(view.prefill_queue) + len(view.loading)
        for request, is_waiting in needy:
            needed = view.kv.blocks_for_tokens(
                request.prompt_len if is_waiting else request.context_len
            )
            # Free batch slots and memory by preempting ahead-of-schedule
            # requests (recompute-based: their KV is dropped).
            while (
                (active >= view.max_batch or needed + watermark > free)
                and victims
                and preempts_left > 0
            ):
                victim = victims.pop(0)
                decision.preempt.append(victim)
                free += view.kv.gpu_pool.used_by(victim.req_id)
                preempts_left -= 1
                active -= 1
            if active >= view.max_batch or needed + watermark > free:
                break
            if is_waiting:
                decision.admit.append(request)
            else:
                decision.resume_recompute.append(request)
            free -= needed
            active += 1
        decision.validate()
        return decision

    def _needy_requests(self, view: SystemView) -> list:
        """Urgency-ordered requests that need service.

        Preempted requests are urgent once their buffer approaches
        depletion; waiting requests are urgent by queueing age.
        """
        needy = []
        for request in view.preempted:
            slack = view.tracker.buffer_seconds(request.req_id, view.now)
            needy.append((slack, request.arrival_time, request, False))
        for request in view.waiting:
            age = view.now - request.arrival_time
            needy.append((-age, request.arrival_time, request, True))
        needy.sort(key=lambda item: (item[0], item[1]))
        return [(request, is_waiting) for _, _, request, is_waiting in needy]

    def _preemption_candidates(self, view: SystemView) -> list:
        """Running requests far enough ahead of schedule, fattest first."""
        ahead = [
            (view.tracker.buffer_seconds(r.req_id, view.now), r)
            for r in view.running
        ]
        ahead = [(slack, r) for slack, r in ahead if slack >= self.params.ahead_threshold_s]
        ahead.sort(key=lambda item: item[0], reverse=True)
        return [request for _, request in ahead]

    def select_oom_victims(self, view: SystemView, blocks_needed: int) -> list:
        """Reactive OOM: evict the most ahead-of-schedule requests."""
        ranked = sorted(
            view.running,
            key=lambda r: view.tracker.buffer_seconds(r.req_id, view.now),
            reverse=True,
        )
        victims: list = []
        freed = 0
        for request in ranked:
            if freed >= blocks_needed:
                break
            victims.append(request)
            freed += view.kv.gpu_pool.used_by(request.req_id)
        return victims
