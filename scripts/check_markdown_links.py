#!/usr/bin/env python3
"""Check that relative file links in the repo's markdown resolve.

Scans every tracked ``*.md`` file for inline links/images
(``[text](target)``) and reference definitions (``[ref]: target``),
skips external schemes (``http(s)://``, ``mailto:``) and pure
in-page anchors (``#...``), and verifies the remaining targets exist
on disk relative to the containing file.  Stdlib only; exits nonzero
listing every broken link.

Run directly or via the fast CI lane (``scripts/ci.sh --fast``)::

    python scripts/check_markdown_links.py
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Inline [text](target) — target up to the first unescaped ')' or
# whitespace (titles like (file.md "Title") drop the title part).
INLINE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

# Fenced code blocks frequently contain pseudo-links (e.g. bash
# arrays, pytest ids); strip them before scanning.
FENCE = re.compile(r"```.*?```", re.DOTALL)


def tracked_markdown() -> list[Path]:
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard",
         "*.md", "**/*.md"],
        cwd=REPO, capture_output=True, text=True, check=True,
    ).stdout
    return [REPO / line for line in out.splitlines() if line]


def targets(text: str):
    text = FENCE.sub("", text)
    for pattern in (INLINE, IMAGE, REFDEF):
        for match in pattern.finditer(text):
            yield match.group(1)


def check() -> int:
    broken = []
    for md in tracked_markdown():
        text = md.read_text(encoding="utf-8")
        for raw in targets(text):
            target = raw.split("#", 1)[0]  # strip in-page anchor
            if not target or raw.startswith(SKIP_PREFIXES):
                continue
            if target.startswith("/"):
                # Repo-absolute form is never used here; flag it.
                broken.append((md, raw, "absolute path"))
                continue
            resolved = (md.parent / target).resolve()
            if not resolved.exists():
                broken.append((md, raw, "missing"))
    if broken:
        print(f"{len(broken)} broken markdown link(s):")
        for md, raw, why in broken:
            print(f"  {md.relative_to(REPO)}: ({raw}) [{why}]")
        return 1
    print(f"markdown links OK ({len(tracked_markdown())} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(check())
