#!/usr/bin/env bash
# CI lanes.
#
#   scripts/ci.sh          tier-1: the full pytest suite (unit +
#                          property + golden + figure benches)
#                          including the perf smoke
#   scripts/ci.sh --fast   fast lane: everything not marked `slow`
#                          (unit/integration/scenario/orchestration
#                          tests, including the fused-vs-unfused decode
#                          parity checks in tests/test_serving_fusion.py
#                          and the vectorised-vs-scalar parity sweep in
#                          tests/test_serving_vectorize.py), plus a
#                          2-worker `repro matrix` smoke cell;
#                          targets < 60 s
#
# The perf wall-clock gate is relaxed in both lanes so slow/loaded
# runners cannot fail a bit-identical build (the deterministic
# call-count gate still protects perf regressions).
#
# Run directly or via `repro selftest [--fast]`.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export REPRO_PERF_NO_WALL_GATE=1

# Capture pytest's status explicitly and exit with it: `set -e` must
# not be able to swallow or reinterpret the suite's result, no matter
# what trailing steps are added after this block.
rc=0
if [[ "$FAST" -eq 1 ]]; then
  echo "== fast lane: pytest -m 'not slow' (incl. fusion + vectorize parity) =="
  python -m pytest -x -q -m "not slow" || rc=$?
  if [[ "$rc" -eq 0 ]]; then
    # Orchestrator smoke: one tiny scenario cell across 2 worker
    # processes, uncached, so a broken pool/pickling path fails fast.
    echo "== fast lane: repro matrix --jobs 2 smoke cell =="
    python -m repro.cli matrix table1-rtx4090-a \
      --jobs 2 --scale 0.1 --seeds 0 --no-cache || rc=$?
  fi
  if [[ "$rc" -eq 0 ]]; then
    # Sharded-cluster smoke: one cluster scenario split across 2 shard
    # worker processes, so a broken shard transport/protocol fails fast.
    echo "== fast lane: repro run --shards 2 smoke =="
    python -m repro.cli run cluster-burst-4x --shards 2 --scale 0.1 || rc=$?
  fi
  if [[ "$rc" -eq 0 ]]; then
    # Catalogue smoke: the long listing renders every ScenarioSpec.doc,
    # so a scenario registered without docs (or a rendering bug) fails
    # fast; the link checker keeps README/docs cross-references honest.
    echo "== fast lane: repro list-scenarios --long + markdown links =="
    python -m repro.cli list-scenarios --long > /dev/null || rc=$?
    if [[ "$rc" -eq 0 ]]; then
      python scripts/check_markdown_links.py || rc=$?
    fi
  fi
else
  echo "== tier-1: full suite (tests/ + benchmarks/, incl. perf smoke) =="
  python -m pytest -x -q || rc=$?
fi

if [[ "$rc" -ne 0 ]]; then
  echo "== CI lane FAILED (pytest exit $rc) =="
  exit "$rc"
fi
echo "== CI lane OK =="
