#!/usr/bin/env bash
# Tier-1 CI flow: the full pytest suite (unit + property + golden +
# figure benches) including the perf smoke, with the wall-clock gate
# relaxed so slow/loaded runners cannot fail a bit-identical build
# (the deterministic call-count gate still protects perf regressions).
#
# Run directly or via `repro selftest`.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export REPRO_PERF_NO_WALL_GATE=1

echo "== tier-1: full suite (tests/ + benchmarks/, incl. perf smoke) =="
python -m pytest -x -q

echo "== tier-1 OK =="
