#!/usr/bin/env python
"""Mixed user + agent serving with adaptive reference rates (§8).

Interactive users declare hard consumption rates the scheduler must
sustain.  Agent clients (LLM pipelines, tool chains) instead carry a
*reference rate* used purely as a priority signal: the adaptive
controller raises it when the GPU is idle — agents soak up spare
capacity — and throttles it the moment an interactive burst arrives,
so users keep their latency targets.

The script serves a steady agent workload, injects a user flash crowd
mid-run, and shows (a) users staying stall-free through the burst and
(b) the agents' reference rates backing off and recovering.

Run:
    python examples/agent_clients.py
"""

from repro import (
    RngStreams,
    ServingConfig,
    ServingSystem,
    TokenFlowScheduler,
)
from repro.analysis.tables import render_table
from repro.client.adaptive import AdaptiveRateController, AdaptiveRateParams
from repro.workload.request import Request


def build_workload() -> list:
    rng = RngStreams(0).stream("lengths")
    requests = []
    # 8 long-running agent requests from t=0 at a low reference rate.
    for idx in range(8):
        requests.append(Request(
            req_id=idx, arrival_time=0.0,
            prompt_len=int(rng.integers(200, 400)),
            output_len=6000, rate=5.0, is_agent=True,
        ))
    # A 24-request interactive burst at t=10 s, 10-tok/s readers.
    for idx in range(24):
        requests.append(Request(
            req_id=100 + idx, arrival_time=10.0,
            prompt_len=int(rng.integers(300, 700)),
            output_len=int(rng.integers(400, 800)),
            rate=10.0, is_agent=False,
        ))
    return requests


def main() -> None:
    config = ServingConfig(hardware="h200", model="llama3-8b",
                           mem_frac=0.05, max_batch=24)
    controller = AdaptiveRateController(AdaptiveRateParams(
        min_rate=5.0, max_rate=40.0, increase_step=2.0, decrease_factor=0.5,
    ))
    system = ServingSystem(config, TokenFlowScheduler(),
                           rate_controller=controller)
    system.submit(build_workload())

    # Sample agent reference rates as the run progresses.
    samples = []
    for checkpoint in (5.0, 11.0, 15.0, 30.0, 60.0, 120.0):
        system.run(until=checkpoint)
        agents = [e.request for e in system.tracker.entries()
                  if e.request.is_agent and not e.request.is_finished]
        if agents:
            mean_rate = sum(r.rate for r in agents) / len(agents)
            samples.append([checkpoint, round(mean_rate, 1), len(system.waiting)])
    system.run(until=50_000.0)

    print(render_table(
        ["t(s)", "mean agent ref-rate (tok/s)", "users waiting"],
        samples,
        title="Agent reference rates back off during the user burst",
    ))

    report = system.report()
    users = [m for m in report.per_request if m.req_id >= 100]
    agents = [m for m in report.per_request if m.req_id < 100]
    print()
    print(render_table(
        ["class", "n", "mean TTFT (s)", "total stall (s)"],
        [
            ["users", len(users),
             round(sum(m.ttft for m in users) / len(users), 2),
             round(sum(m.stall_time for m in users), 2)],
            ["agents", len(agents),
             round(sum(m.ttft for m in agents) / len(agents), 2),
             "n/a (reference rate)"],
        ],
        title="Outcome: users protected through the burst",
    ))
    print(f"\ncontroller applied {controller.adjustments} rate adjustments; "
          f"{report.preemptions} preemption cycles")


if __name__ == "__main__":
    main()
