#!/usr/bin/env python
"""Flash-crowd comparison: SGLang vs chunked vs Andes vs TokenFlow.

Reproduces the paper's core motivation scenario (§2.3, Fig. 16): a
burst of requests hits a memory-constrained GPU; FCFS queues them for
tens of seconds while TokenFlow preempts fat-buffer streams to admit
newcomers, cutting TTFT by an order of magnitude at equal throughput.

Run:
    python examples/burst_comparison.py [n_requests]
"""

import sys

from repro.analysis.tables import render_table
from repro.experiments.runner import run_comparison
from repro.serving.metrics import RunReport
from repro.sim.rng import RngStreams
from repro.workload.builder import RateMixture, WorkloadBuilder, WorkloadSpec
from repro.workload.lengths import NormalLengthSampler

SYSTEMS = ("sglang", "sglang-chunked", "andes", "tokenflow")


def main(n_requests: int = 150) -> None:
    spec = WorkloadSpec(
        arrival="burst",
        n_requests=n_requests,
        burst_spread=0.25,
        lengths=NormalLengthSampler(),
        rates=RateMixture.fixed(10.0),
    )
    requests = WorkloadBuilder(spec, RngStreams(0)).build()
    print(f"Running {len(requests)}-request burst across {len(SYSTEMS)} systems...")
    reports = run_comparison(
        SYSTEMS, requests,
        hardware="h200", model="llama3-8b", mem_frac=0.1, max_batch=48,
    )

    print(render_table(
        RunReport.summary_headers() + ["stall(s)", "preempts", "qos"],
        [
            report.summary_row() + [
                round(report.stall_total, 1),
                report.preemptions,
                round(report.qos, 1),
            ]
            for report in reports.values()
        ],
        title=f"Flash crowd of {n_requests} requests — H200 / Llama3-8B",
    ))

    sglang, tokenflow = reports["sglang"], reports["tokenflow"]
    print(
        f"\nTokenFlow vs SGLang: "
        f"{(tokenflow.effective_throughput / sglang.effective_throughput - 1) * 100:+.1f}% "
        f"effective throughput, "
        f"{(1 - tokenflow.ttft_p99 / sglang.ttft_p99) * 100:.1f}% lower P99 TTFT, "
        f"{(tokenflow.throughput / sglang.throughput - 1) * 100:+.1f}% raw throughput."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 150)
