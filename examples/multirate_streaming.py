#!/usr/bin/env python
"""Multi-rate streaming: heterogeneous consumption speeds (Fig. 19).

A mixed population — 40% of users reading at 15 tokens/s, 60% at
20 tokens/s — shares one GPU.  TokenFlow's buffer-aware priorities let
each class settle at its own target delivery rate without any
per-class configuration: faster readers drain buffers sooner and gain
implicit priority.

Also demonstrates drawing consumption rates from the paper's Fig. 1
reading-speed tables (age group x language).

Run:
    python examples/multirate_streaming.py
"""

from repro.analysis.tables import render_table
from repro.client.rates import reading_rate
from repro.experiments.multirate import render_multirate, run_multirate


def main() -> None:
    print("Fig. 1 sample rates:",
          f"english/18-25 reads at {reading_rate('english', '18-25')} tok/s,",
          f"japanese/60+ at {reading_rate('japanese', '60+')} tok/s\n")

    print("Serving a 60-request burst, 40% @15 tok/s + 60% @20 tok/s...")
    stats = run_multirate(
        rates=(15.0, 20.0), weights=(0.4, 0.6), n_requests=60,
        hardware="h200", model="llama3-8b", mem_frac=0.3, max_batch=64,
    )
    print(render_multirate(stats))

    rows = []
    for rate, cls in stats.items():
        deviation = abs(cls.delivery_rate_mean - rate) / rate * 100
        rows.append([rate, f"{deviation:.1f}%", "yes" if deviation < 15 else "no"])
    print()
    print(render_table(
        ["target(tok/s)", "deviation", "within tolerance"],
        rows,
        title="Automatic rate differentiation (no manual configuration)",
    ))


if __name__ == "__main__":
    main()
