#!/usr/bin/env python
"""Closed-loop chatbot sessions: multi-turn conversations with think time.

Models the paper's motivating chatbot workload faithfully: each user
asks a question, reads the streamed answer at their own pace, thinks,
and asks a follow-up whose prompt carries the whole conversation
history (so prompts — and KV footprints — grow turn by turn).  A
burst of new sessions lands mid-run while earlier conversations are
still going; TokenFlow absorbs it by preempting well-buffered streams.

Run:
    python examples/chat_sessions.py
"""

from repro import ServingConfig, ServingSystem, TokenFlowScheduler
from repro.analysis.tables import render_table
from repro.workload.sessions import SessionDriver, SessionSpec


def main() -> None:
    config = ServingConfig(hardware="h200", model="llama3-8b",
                           mem_frac=0.02, max_batch=16)
    system = ServingSystem(config, TokenFlowScheduler())

    sessions = []
    # Wave 1: 8 conversations from t=0.
    for idx in range(8):
        sessions.append(SessionSpec(
            session_id=idx, n_turns=3, first_arrival=0.5 * idx,
            question_tokens=64, answer_tokens=200, think_time_s=4.0,
            rate=10.0,
        ))
    # Wave 2: 8 more conversations burst in at t=30.
    for idx in range(8, 16):
        sessions.append(SessionSpec(
            session_id=idx, n_turns=3, first_arrival=30.0,
            question_tokens=64, answer_tokens=200, think_time_s=4.0,
            rate=10.0,
        ))

    driver = SessionDriver(system, sessions)
    driver.start()
    system.run(until=100_000.0)
    assert driver.all_done

    report = system.report()
    rows = []
    for spec in sessions:
        turns = [system.tracker.get(spec.request_id(t)) for t in range(spec.n_turns)]
        ttfts = [e.request.ttft for e in turns]
        stalls = sum(e.buffer.stall_time for e in turns)
        rows.append([
            spec.session_id,
            round(spec.first_arrival, 1),
            turns[-1].request.prompt_len,     # history growth visible
            round(max(ttfts), 2),
            round(stalls, 2),
            round(driver.session_latency(spec.session_id), 1),
        ])
    print(render_table(
        ["session", "arrived(s)", "last_prompt(tok)", "worst_ttft(s)",
         "stall(s)", "session_latency(s)"],
        rows,
        title="16 closed-loop chat sessions (3 turns each) under TokenFlow",
    ))
    print(f"\noverall: {report.n_finished} turns served, "
          f"{report.preemptions} preemption cycles, "
          f"P99 turn TTFT {report.ttft_p99:.2f}s, "
          f"total stall {report.stall_total:.2f}s")


if __name__ == "__main__":
    main()
