#!/usr/bin/env python
"""Quickstart: serve a burst of streaming requests with TokenFlow.

Builds an H200 + Llama3-8B serving instance with the TokenFlow
scheduler, submits a 48-request flash crowd of 10-tokens/s readers,
runs the simulation to completion, and prints the headline metrics.

Run:
    python examples/quickstart.py
"""

from repro import (
    RngStreams,
    ServingConfig,
    ServingSystem,
    TokenFlowScheduler,
    WorkloadBuilder,
    WorkloadSpec,
)
from repro.analysis.tables import render_table
from repro.workload.builder import RateMixture


def main() -> None:
    # 1. Describe the serving instance: hardware, model, memory split.
    config = ServingConfig(
        hardware="h200",
        model="llama3-8b",
        mem_frac=0.1,     # KV pool share of device memory
        max_batch=48,     # decode-batch cap
    )

    # 2. Pick a scheduler.  TokenFlowScheduler is the paper's system;
    #    SGLangScheduler / AndesScheduler are the baselines.
    system = ServingSystem(config, TokenFlowScheduler())

    # 3. Describe the workload: a flash crowd of 48 requests, normal-
    #    distributed lengths, every user reading at 10 tokens/s.
    spec = WorkloadSpec(
        arrival="burst",
        n_requests=48,
        burst_spread=0.25,
        rates=RateMixture.fixed(10.0),
    )
    requests = WorkloadBuilder(spec, RngStreams(0)).build()

    # 4. Run to completion and report.
    system.submit(requests)
    system.run(until=10_000.0)
    report = system.report()

    print(render_table(
        ["metric", "value"],
        [
            ["requests finished", f"{report.n_finished}/{report.n_requests}"],
            ["makespan (s)", round(report.makespan, 1)],
            ["throughput (tok/s)", round(report.throughput, 1)],
            ["effective throughput (tok/s)", round(report.effective_throughput, 1)],
            ["mean TTFT (s)", round(report.ttft_mean, 3)],
            ["P99 TTFT (s)", round(report.ttft_p99, 3)],
            ["total stall time (s)", round(report.stall_total, 2)],
            ["preemption cycles", report.preemptions],
            ["QoS score", round(report.qos, 1)],
        ],
        title="TokenFlow quickstart — 48-request burst on H200/Llama3-8B",
    ))


if __name__ == "__main__":
    main()
