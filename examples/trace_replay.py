#!/usr/bin/env python
"""Trace replay: BurstGPT-like and production-shaped workloads.

Replays a synthesized BurstGPT-style trace (steady traffic + flash
crowd episodes) through SGLang and TokenFlow and prints the temporal
queue dynamics the paper's Figs. 14/15 plot: queued requests spike
under FCFS during bursts while TokenFlow absorbs them by preempting
buffered streams.

Run:
    python examples/trace_replay.py
"""

from repro.analysis.tables import render_table
from repro.experiments.endtoend import (
    improvement_summary,
    render_endtoend,
    run_endtoend,
)
from repro.experiments.runner import clone_requests
from repro.experiments.systems import build_system
from repro.experiments.endtoend import build_trace_workload
from repro.experiments.temporal import binned_timeline


def main() -> None:
    testbed = "h200-llama3-8b"
    print("End-to-end comparison on the BurstGPT-like trace...")
    reports = run_endtoend(
        testbed, trace="burstgpt",
        systems=("sglang", "andes", "tokenflow"), duration=60.0,
    )
    print(render_endtoend(testbed, "burstgpt", reports))
    summary = improvement_summary(reports)
    print("\nTokenFlow vs SGLang:",
          {k: round(v, 3) for k, v in summary.items()}, "\n")

    print("Temporal queue dynamics (Figs. 14/15 style)...")
    requests = build_trace_workload(testbed, trace="burstgpt", duration=60.0)
    rows = []
    series = {}
    for name in ("sglang", "tokenflow"):
        system = build_system(
            name, hardware="h200", model="llama3-8b", mem_frac=0.1, max_batch=64
        )
        system.submit(clone_requests(requests))
        system.run(until=50_000.0)
        series[name] = binned_timeline(system.timeline, bin_s=10.0,
                                       horizon=system.makespan())
    length = min(len(series[n]["t"]) for n in series)
    for idx in range(length):
        rows.append([
            round(float(series["sglang"]["t"][idx]), 0),
            round(float(series["sglang"]["queued"][idx]), 1),
            round(float(series["tokenflow"]["queued"][idx]), 1),
            round(float(series["sglang"]["running"][idx]), 1),
            round(float(series["tokenflow"]["running"][idx]), 1),
        ])
    print(render_table(
        ["t(s)", "queued:sglang", "queued:tokenflow",
         "running:sglang", "running:tokenflow"],
        rows,
        title="Queued / running requests over time",
    ))


if __name__ == "__main__":
    main()
